#include "engine/load_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "dns/message.h"

namespace doxlab::engine {

std::string_view attack_kind_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kRandomSubdomain: return "random-subdomain";
    case AttackKind::kWaterTorture: return "water-torture";
    case AttackKind::kAmplification: return "amplification";
  }
  return "?";
}

LoadGenerator::LoadGenerator(sim::Simulator& sim, net::UdpStack& udp,
                             LoadConfig config)
    : sim_(sim), config_(std::move(config)), rng_(config_.seed) {
  clients_.reserve(config_.clients);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    auto client = std::make_unique<Client>();
    client->socket = udp.bind_ephemeral();
    if (config_.client_span > 0) {
      // SplitMix64 on (seed, client index): stable per client, independent
      // of the arrival stream, collisions harmless (ports still demux).
      client->source = net::IpAddress(
          config_.client_base.value() +
          static_cast<std::uint32_t>(splitmix64(config_.seed, i) %
                                     config_.client_span));
    }
    client->socket->on_datagram([this, i](const net::Endpoint&,
                                          util::Buffer payload) {
      auto response = dns::Message::decode(payload);
      if (!response || !response->qr) return;
      Client& c = *clients_[i];
      auto it = c.pending.find(response->id);
      if (it == c.pending.end()) return;  // late answer after timeout
      it->second.timeout.cancel();
      if (response->rcode == dns::RCode::kServFail) {
        ++report_.servfails;
        if (config_.sample_hook) {
          config_.sample_hook(it->second.sent_at, QueryOutcome::kServfail,
                              0.0);
        }
      } else {
        ++report_.answered;
        const double latency = to_ms(sim_.now() - it->second.sent_at);
        report_.latency_ms.push_back(latency);
        if (config_.sample_hook) {
          config_.sample_hook(it->second.sent_at, QueryOutcome::kAnswered,
                              latency);
        }
      }
      c.pending.erase(it);
    });
    clients_.push_back(std::move(client));
  }

  // Zipf weights 1/rank^s, stored cumulatively for O(log n) sampling.
  name_cdf_.reserve(config_.names);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= config_.names; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank),
                            config_.zipf_exponent);
    name_cdf_.push_back(total);
  }

  // Poisson arrivals: exponential inter-arrival gaps at the aggregate rate.
  const double mean_gap_us =
      static_cast<double>(kSecond) / std::max(config_.qps, 1e-9);
  SimTime at = sim_.now();
  while (true) {
    at += std::max<SimTime>(1, static_cast<SimTime>(
                                   rng_.exponential(mean_gap_us)));
    if (at >= sim_.now() + config_.duration) break;
    const std::size_t client = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(config_.clients) - 1));
    arrivals_.push_back(
        sim_.at(at, [this, client] { send_query(client); }));
  }

  // Attack mixes: each gets a socket, a private Rng stream (the 2^32 index
  // offset keeps it disjoint from client-address derivation), and its own
  // pre-scheduled Poisson arrivals — the legit schedule above is already
  // fixed, so attacks never perturb it.
  attacks_.reserve(config_.attacks.size());
  for (std::size_t k = 0; k < config_.attacks.size(); ++k) {
    auto state = std::make_unique<AttackState>(AttackState{
        config_.attacks[k],
        Rng(splitmix64(config_.seed, (std::uint64_t{1} << 32) + k)),
        udp.bind_ephemeral(),
        AttackReport{config_.attacks[k].kind}});
    state->socket->on_datagram([this, k](const net::Endpoint&,
                                         util::Buffer payload) {
      auto response = dns::Message::decode(payload);
      if (!response || !response->qr) return;
      AttackReport& r = attacks_[k]->report;
      if (response->tc) {
        ++r.truncated;
      } else if (response->rcode == dns::RCode::kRefused) {
        ++r.refused;
      } else {
        ++r.answered;
      }
    });

    const AttackConfig& attack = state->config;
    const double attack_gap_us =
        static_cast<double>(kSecond) / std::max(attack.qps, 1e-9);
    SimTime attack_at = sim_.now() + attack.start;
    const SimTime attack_end = attack_at + attack.duration;
    while (true) {
      attack_at += std::max<SimTime>(
          1, static_cast<SimTime>(state->rng.exponential(attack_gap_us)));
      if (attack_at >= attack_end) break;
      arrivals_.push_back(
          sim_.at(attack_at, [this, k] { send_attack(k); }));
    }
    attacks_.push_back(std::move(state));
  }
}

std::vector<AttackReport> LoadGenerator::attack_reports() const {
  std::vector<AttackReport> reports;
  reports.reserve(attacks_.size());
  for (const auto& attack : attacks_) reports.push_back(attack->report);
  return reports;
}

AttackReport LoadGenerator::attack_total() const {
  AttackReport total;
  for (const auto& attack : attacks_) {
    total.kind = attack->report.kind;
    total.sent += attack->report.sent;
    total.answered += attack->report.answered;
    total.refused += attack->report.refused;
    total.truncated += attack->report.truncated;
  }
  return total;
}

void LoadGenerator::send_attack(std::size_t attack_index) {
  AttackState& state = *attacks_[attack_index];
  const AttackConfig& attack = state.config;
  // Spoofed source for this packet: one of the configured addresses.
  const net::IpAddress source(
      attack.source_base.value() +
      static_cast<std::uint32_t>(state.rng.uniform_int(
          0, static_cast<std::int64_t>(attack.source_count) - 1)));

  std::string qname;
  dns::RRType qtype = dns::RRType::kA;
  switch (attack.kind) {
    case AttackKind::kRandomSubdomain:
      qname = "r" + std::to_string(state.rng.uniform_int(0, 1 << 30)) + "." +
              attack.zone;
      break;
    case AttackKind::kWaterTorture:
      qname = "w" + std::to_string(state.rng.uniform_int(0, 1 << 30)) +
              ".z" + std::to_string(state.rng.uniform_int(0, 7)) + "." +
              attack.zone;
      break;
    case AttackKind::kAmplification:
      // Small query, big TXT answer: the resolver sizes the payload from
      // the leading label.
      qname = "txt" + std::to_string(attack.amp_payload) + "." + attack.zone;
      qtype = dns::RRType::kTXT;
      break;
  }

  const std::uint16_t id =
      static_cast<std::uint16_t>(state.rng.uniform_int(1, 0xFFFF));
  dns::Message query =
      dns::make_query(id, dns::DnsName::parse(qname), qtype);
  ++state.report.sent;
  state.socket->send_to_from(config_.target, source,
                             util::Buffer::copy_of(query.encode()));
}

std::size_t LoadGenerator::sample_name() {
  const double u = rng_.uniform_real(0.0, name_cdf_.back());
  auto it = std::upper_bound(name_cdf_.begin(), name_cdf_.end(), u);
  return static_cast<std::size_t>(it - name_cdf_.begin());
}

void LoadGenerator::send_query(std::size_t client_index) {
  Client& client = *clients_[client_index];
  const std::size_t name_index = std::min(sample_name(), config_.names - 1);
  const dns::DnsName name = dns::DnsName::parse(
      "name" + std::to_string(name_index) + ".load.example");

  std::uint16_t id = client.next_id++;
  if (client.next_id == 0) client.next_id = 1;
  dns::Message query = dns::make_query(id, name, dns::RRType::kA);

  PendingQuery pending;
  pending.sent_at = sim_.now();
  pending.timeout = sim_.schedule(
      config_.client_timeout, [this, client_index, id, at = sim_.now()] {
        Client& c = *clients_[client_index];
        if (c.pending.erase(id) > 0) {
          ++report_.timeouts;
          if (config_.sample_hook) {
            config_.sample_hook(at, QueryOutcome::kTimeout, 0.0);
          }
        }
      });
  client.pending[id] = std::move(pending);

  ++report_.sent;
  if (config_.client_span > 0) {
    client.socket->send_to_from(config_.target, client.source,
                                util::Buffer::copy_of(query.encode()));
  } else {
    client.socket->send_to(config_.target, query.encode());
  }
}

}  // namespace doxlab::engine
