// Resolver-churn availability campaigns: scripted upstream outages,
// recoveries, and anycast-style route flaps driven through a live
// `ForwarderEngine`, with the client-visible answerable rate and tail
// latency bucketed into a time series through every transition.
//
// Two event families map onto two real failure modes:
//   * kOutage / kRecover  — the upstream *host* goes dark and later comes
//     back (packets to it are dropped at routing). The pool discovers the
//     outage the hard way: attempt timeouts, consecutive-failure health,
//     quarantine. This is the "resolver died" case.
//   * kWithdraw / kAnnounce — the upstream is administratively removed from
//     (re-added to) the candidate plan, the analogue of an anycast catchment
//     shifting away: the next query simply never tries it. No timeout is
//     paid. This is the "route moved" case.
//
// A campaign can additionally restart the forwarder mid-run
// (`restart_at`): the first world runs up to the restart, drains, and is
// torn down; a second world fast-forwards its clock to the restart instant,
// builds a fresh engine — which warm-starts from the snapshot tier when
// `engine.snapshot_dir` is set — and carries the remaining load. The
// bucketed series spans both worlds seamlessly, which is exactly the view
// needed to compare cold-start and warm-start recovery (bench/cache_tiers).
//
// Deterministic: both worlds derive everything from `seed`.
#pragma once

#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/load_gen.h"

namespace doxlab::engine {

enum class ChurnAction : std::uint8_t {
  kOutage,    ///< upstream host down (set_up(false)): timeouts + quarantine
  kRecover,   ///< upstream host back up
  kWithdraw,  ///< administratively removed from the pool's candidate plan
  kAnnounce,  ///< re-announced (health state cleared)
};

std::string_view churn_action_name(ChurnAction action);

struct ChurnEvent {
  SimTime at = 0;
  std::size_t upstream = 0;  ///< index into `upstream_one_way`
  ChurnAction action = ChurnAction::kOutage;
};

struct ChurnConfig {
  std::uint64_t seed = 42;
  /// Upstream resolvers at pinned one-way delays (same world shape as
  /// run_scenario: the first is the primary).
  std::vector<SimTime> upstream_one_way = {from_ms(25), from_ms(40),
                                           from_ms(60)};
  std::vector<dox::DnsProtocol> protocols = {dox::DnsProtocol::kDoQ,
                                             dox::DnsProtocol::kDoT,
                                             dox::DnsProtocol::kDoUdp};
  EngineConfig engine;
  LoadConfig load;
  /// The transition schedule, in absolute sim time.
  std::vector<ChurnEvent> events;
  /// Time-series bucket width.
  SimTime bucket = kSecond;
  /// Restart the forwarder at this instant (0 = never). Arrivals pause at
  /// the restart while the first world drains, then resume in the second
  /// world; with `engine.snapshot_dir` set the second engine warm-starts.
  SimTime restart_at = 0;
  /// Width of the windows compared around the restart (steady-state window
  /// just before it, first-epoch window just after it).
  SimTime epoch_window = 2 * kSecond;
};

/// One bucket of the campaign's client-visible series. `sent` counts the
/// queries issued in the bucket that reached a terminal outcome; latency
/// percentiles cover the answered ones.
struct ChurnBucket {
  SimTime start = 0;
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;
  std::uint64_t servfails = 0;
  std::uint64_t timeouts = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  double answer_rate() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(answered) /
                           static_cast<double>(sent);
  }
};

struct ChurnResult {
  std::vector<ChurnBucket> series;
  /// Engine counters summed across worlds (two when `restart_at` fired).
  EngineStats engine;
  /// Client counters summed across worlds.
  LoadReport load;
  std::uint64_t events_executed = 0;
  /// The schedule that ran (echo of config.events).
  std::vector<ChurnEvent> events;

  // Restart bookkeeping (all zero-initialised when restart_at == 0).
  /// First world's stats at `restart_at - epoch_window` and at
  /// `restart_at`: their difference is the steady-state window.
  EngineStats pre_window_start;
  EngineStats pre_restart;
  /// Second world's stats at `restart_at + epoch_window` — counters start
  /// from zero there, so this IS the first-epoch window.
  EngineStats post_first_epoch;
  /// Entries the second world's engine promoted from the snapshot log.
  std::uint64_t warm_loaded = 0;
};

/// Runs the campaign to completion (both worlds when restarting).
ChurnResult run_churn(const ChurnConfig& config);

/// The bucket series as CSV:
/// `bucket_s,sent,answered,servfails,timeouts,answer_rate,p50_ms,p99_ms`.
std::string churn_csv(const ChurnResult& result);

}  // namespace doxlab::engine
