// A self-contained engine load scenario: one client host running a
// `ForwarderEngine`, a handful of upstream DoX resolvers at fixed RTTs, and
// a `LoadGenerator` driving simulated stub clients — the harness behind
// `bench/engine_load` and `doxperf engine`.
//
// Everything is deterministic from `seed`; the optional mid-run primary
// kill exercises health-tracked failover under live traffic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/load_gen.h"

namespace doxlab::engine {

/// The abuse-scenario family: legitimate load plus the three attack mixes,
/// shed by the canonical policy chain. When enabled, run_scenario
///   * gives every stub client its own source address in 10.50.0.0/16
///     (prefix-routed to the engine host),
///   * launches a random-subdomain flood (flood.example) and water torture
///     (torture.example) from bot subnets in 198.18.0.0/16, and a
///     spoofed-source TXT amplification run whose sources sit in the
///     unrouted victim prefix 203.0.113.0/24 (backscatter is dropped at
///     routing — it never returns to the bots),
///   * duplicates the primary upstream into a dedicated "anycast" pool and
///     routes load.example there (named-pool routing with identical RTT, so
///     legit latency stays comparable to the no-attack baseline), and
///   * installs the chain: refuse TXT, per-/24 rate-limit drop, refuse
///     flood.example, drop torture.example, route load.example -> anycast —
///     unless `engine.policy` already has rules (caller override).
struct AbuseMix {
  bool enabled = false;
  double flood_qps = 3000.0;
  double torture_qps = 1500.0;
  double amp_qps = 1000.0;
  /// Attack window offset; duration 0 means "until the load window ends".
  SimTime start = 5 * kSecond;
  SimTime duration = 0;
  /// Per-/24 client-subnet budget for the rate-limit rule.
  std::uint32_t rate_limit_qps = 100;
};

struct ScenarioConfig {
  std::uint64_t seed = 42;
  /// Upstream resolvers; RTTs to the client are 2x these one-way delays.
  /// The first upstream is the primary.
  std::vector<SimTime> upstream_one_way = {from_ms(25), from_ms(40),
                                           from_ms(60)};
  /// Fallback chain used by every upstream.
  std::vector<dox::DnsProtocol> protocols = {dox::DnsProtocol::kDoQ,
                                             dox::DnsProtocol::kDoT,
                                             dox::DnsProtocol::kDoUdp};
  /// Take the primary upstream down at this time (0 = never).
  SimTime kill_primary_at = 0;
  AbuseMix abuse;
  EngineConfig engine;
  LoadConfig load;
};

struct ScenarioResult {
  EngineStats engine;
  LoadReport load;
  /// Per-attack counters (abuse scenarios; empty otherwise).
  std::vector<AttackReport> attacks;
  double offered_qps = 0.0;
  double engine_qps = 0.0;
  /// Simulator events executed (work proxy for the run).
  std::uint64_t events = 0;

  /// Fraction of attack queries shed (refused/dropped/truncated). Sent
  /// minus observed responses covers silent drops AND spoofed-source
  /// backscatter that never returns to the bots.
  double attack_shed_rate() const {
    std::uint64_t sent = 0, answered = 0;
    for (const AttackReport& a : attacks) {
      sent += a.sent;
      answered += a.answered;
    }
    return sent == 0 ? 0.0
                     : static_cast<double>(sent - answered) /
                           static_cast<double>(sent);
  }
};

/// Builds the scenario, runs it to completion, and returns the stats.
ScenarioResult run_scenario(const ScenarioConfig& config);

}  // namespace doxlab::engine
