// A self-contained engine load scenario: one client host running a
// `ForwarderEngine`, a handful of upstream DoX resolvers at fixed RTTs, and
// a `LoadGenerator` driving simulated stub clients — the harness behind
// `bench/engine_load` and `doxperf engine`.
//
// Everything is deterministic from `seed`; the optional mid-run primary
// kill exercises health-tracked failover under live traffic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/load_gen.h"

namespace doxlab::engine {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  /// Upstream resolvers; RTTs to the client are 2x these one-way delays.
  /// The first upstream is the primary.
  std::vector<SimTime> upstream_one_way = {from_ms(25), from_ms(40),
                                           from_ms(60)};
  /// Fallback chain used by every upstream.
  std::vector<dox::DnsProtocol> protocols = {dox::DnsProtocol::kDoQ,
                                             dox::DnsProtocol::kDoT,
                                             dox::DnsProtocol::kDoUdp};
  /// Take the primary upstream down at this time (0 = never).
  SimTime kill_primary_at = 0;
  EngineConfig engine;
  LoadConfig load;
};

struct ScenarioResult {
  EngineStats engine;
  LoadReport load;
  double offered_qps = 0.0;
  double engine_qps = 0.0;
  /// Simulator events executed (work proxy for the run).
  std::uint64_t events = 0;
};

/// Builds the scenario, runs it to completion, and returns the stats.
ScenarioResult run_scenario(const ScenarioConfig& config);

}  // namespace doxlab::engine
