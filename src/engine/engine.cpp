#include "engine/engine.h"

#include <algorithm>
#include <iterator>

#include "util/logging.h"

namespace doxlab::engine {

ForwarderEngine::ForwarderEngine(sim::Simulator& sim,
                                 net::UdpStack& stub_udp,
                                 const dox::TransportDeps& upstream_deps,
                                 std::vector<UpstreamConfig> upstreams,
                                 EngineConfig config)
    : sim_(sim), config_(std::move(config)) {
  // Group upstreams into named pools, order of first appearance. With every
  // upstream in one pool (the default) this is exactly the pre-policy
  // engine: one pool walking all upstreams.
  std::vector<std::vector<UpstreamConfig>> groups;
  for (auto& upstream : upstreams) {
    const std::string& name =
        upstream.pool.empty() ? std::string("default") : upstream.pool;
    std::size_t index = pool_names_.size();
    for (std::size_t i = 0; i < pool_names_.size(); ++i) {
      if (pool_names_[i] == name) {
        index = i;
        break;
      }
    }
    if (index == pool_names_.size()) {
      pool_names_.push_back(name);
      groups.emplace_back();
    }
    groups[index].push_back(std::move(upstream));
  }
  if (groups.empty()) {
    // No upstreams at all: keep one empty default pool so resolves fail
    // with kNoRoute instead of indexing nothing.
    pool_names_.push_back("default");
    groups.emplace_back();
  }
  pools_.reserve(groups.size());
  for (auto& group : groups) {
    pools_.push_back(std::make_unique<UpstreamPool>(
        sim, upstream_deps, std::move(group), config_.pool));
  }

  // Compile the policy chain against the pool names; kRoutePool targets
  // resolve to indices here, so an unknown name fails construction.
  chain_ = policy::RuleChain(config_.policy, pool_names_);

  cache_.set_capacity(config_.cache_capacity);
  if (config_.wire_cache_capacity > 0) {
    dns::WireCacheConfig wire_config;
    wire_config.capacity = config_.wire_cache_capacity;
    wire_config.serve_stale = config_.serve_stale;
    wire_config.max_stale = config_.max_stale;
    wire_config.stale_ttl = config_.stale_ttl;
    wire_cache_ = std::make_unique<dns::WireCache>(wire_config);
  }
  if (!config_.snapshot_dir.empty()) {
    dns::SnapshotConfig snap_config;
    snap_config.path = config_.snapshot_dir + "/shard-" +
                       std::to_string(config_.shard_index) + ".snap";
    snap_config.max_stale = config_.serve_stale ? config_.max_stale : 0;
    snapshot_ = std::make_unique<dns::SnapshotTier>(std::move(snap_config));
    warm_start_from_snapshot();
  }
  listener_ = stub_udp.bind(config_.listen_port);
  listener_->on_datagram([this](const net::Endpoint& from,
                                util::Buffer payload) {
    on_stub_query(from, std::move(payload));
  });
  listener_->on_batch([this](std::span<net::Datagram> batch) {
    on_stub_batch(batch);
  });
}

std::vector<dns::ResourceRecord> ForwarderEngine::clamp_ttls(
    std::vector<dns::ResourceRecord> records) const {
  if (config_.min_ttl == 0 && config_.max_ttl == 0) return records;
  for (auto& rr : records) {
    if (config_.max_ttl != 0 && rr.ttl > config_.max_ttl) {
      rr.ttl = config_.max_ttl;
    }
    if (rr.ttl < config_.min_ttl) rr.ttl = config_.min_ttl;
  }
  return records;
}

void ForwarderEngine::send_response(const Waiter& waiter,
                                    const dns::Question& question,
                                    dns::RCode rcode, bool tc) {
  dns::Message& response = scratch_response_;
  response.id = waiter.stub_id;
  response.qr = true;
  response.tc = tc;
  response.ra = true;
  response.rcode = rcode;
  // Copy-assign into retained storage: after warm-up neither the question
  // slot nor the pooled encode buffer allocates.
  response.questions.resize(1);
  response.questions[0] = question;
  response.authorities.clear();
  response.additionals.clear();
  ship(waiter.from, response.encode_buffer());
  latency_ms_.push_back(to_ms(sim_.now() - waiter.arrived));
}

void ForwarderEngine::ship(const net::Endpoint& to, util::Buffer wire) {
  if (batching_) {
    response_flush_.push_back(
        net::OutboundDatagram{to, net::IpAddress{}, std::move(wire)});
    return;
  }
  listener_->send_to(to, std::move(wire));
}

void ForwarderEngine::answer(const Waiter& waiter,
                             const dns::Question& question,
                             std::vector<dns::ResourceRecord> records) {
  scratch_response_.answers = std::move(records);
  send_response(waiter, question, dns::RCode::kNoError);
}

void ForwarderEngine::answer_cached(const Waiter& waiter,
                                    const dns::Question& question,
                                    const dns::EntryRef& found) {
  std::vector<dns::ResourceRecord>& answers = scratch_response_.answers;
  answers = *found.records;
  if (found.stale) {
    for (auto& rr : answers) rr.ttl = config_.stale_ttl;
  } else if (found.age_s > 0) {
    for (auto& rr : answers) {
      rr.ttl = dns::tier_decay_ttl(rr.ttl, found.age_s);
    }
  }
  send_response(waiter, question, dns::RCode::kNoError);
}

void ForwarderEngine::answer_servfail(const Waiter& waiter,
                                      const dns::Question& question) {
  ++servfails_sent_;
  scratch_response_.answers.clear();
  send_response(waiter, question, dns::RCode::kServFail);
}

void ForwarderEngine::answer_stale_with_refresh(const Waiter& waiter,
                                                const dns::Question& question,
                                                std::uint32_t pool_index) {
  ++stale_hits_;
  send_response(waiter, question, dns::RCode::kNoError);
  // Exactly one background refresh per key: a refresh (or a coalesced
  // resolve) already in flight absorbs this hit, so a burst of stale-served
  // queries never turns into a resolve-per-query storm.
  const KeyView key_view{question.name, question.type};
  if (inflight_.find(key_view) == inflight_.end()) {
    ++stale_refreshes_;
    auto [it, inserted] =
        inflight_.try_emplace(Key{question.name, question.type});
    start_resolve(it->first, question, pool_index);
  }
}

bool ForwarderEngine::try_answer_l2(const Waiter& waiter,
                                    const dns::Question& question,
                                    std::span<const std::uint8_t> query,
                                    std::uint32_t pool_index) {
  ++l2_lookups_;
  dns::PacketCacheHit hit;
  const SimTime max_stale =
      config_.l2_serve_stale && config_.serve_stale ? config_.max_stale : 0;
  if (!config_.l2->lookup(config_.shard_index, question.name, question.type,
                          sim_.now(), hit, max_stale)) {
    return false;
  }
  // Decode the shared bytes into the retained scratch answers, then decay
  // TTLs so the client sees the remaining lifetime.
  std::vector<dns::ResourceRecord>& answers = scratch_response_.answers;
  if (!dns::SharedPacketCache::decode_rrset(hit.wire, answers)) return false;
  ++l2_hits_;
  if (hit.stale) {
    // Stale bytes are never promoted — the single refresh this triggers
    // re-promotes the fresh answer into L1 (and the L2/snapshot) instead.
    for (auto& rr : answers) rr.ttl = config_.stale_ttl;
    answer_stale_with_refresh(waiter, question, pool_index);
    return true;
  }
  if (hit.age_s > 0) {
    for (auto& rr : answers) rr.ttl = dns::tier_decay_ttl(rr.ttl, hit.age_s);
  }
  // Promote into the local L1 (already-decayed TTLs keep expiry honest), so
  // this shard's next query for the key stays on the zero-copy L1 path.
  if (config_.cache_enabled) {
    cache_.insert(question.name, question.type, answers, sim_.now());
  }
  send_response(waiter, question, dns::RCode::kNoError);
  if (wire_cache_ != nullptr) wire_fill(query, question);
  return true;
}

bool ForwarderEngine::try_answer_snapshot(const Waiter& waiter,
                                          const dns::Question& question,
                                          std::span<const std::uint8_t> query,
                                          std::uint32_t pool_index) {
  ++snapshot_lookups_;
  dns::SnapshotHit hit;
  if (!snapshot_->lookup(question.name, question.type, sim_.now(), hit)) {
    return false;
  }
  std::vector<dns::ResourceRecord>& answers = scratch_response_.answers;
  if (!dns::SharedPacketCache::decode_rrset(*hit.rrset, answers)) {
    return false;
  }
  ++snapshot_hits_;
  if (hit.stale) {
    for (auto& rr : answers) rr.ttl = config_.stale_ttl;
    answer_stale_with_refresh(waiter, question, pool_index);
    return true;
  }
  if (hit.age_s > 0) {
    for (auto& rr : answers) rr.ttl = dns::tier_decay_ttl(rr.ttl, hit.age_s);
  }
  // Promote up the hierarchy: into this shard's L1 and (deferred) the
  // shared L2, so siblings skip their own disk consultation for the key.
  if (config_.cache_enabled) {
    cache_.insert(question.name, question.type, answers, sim_.now());
  }
  if (config_.l2 != nullptr) {
    config_.l2->insert(config_.shard_index, question.name, question.type,
                       answers, sim_.now());
  }
  send_response(waiter, question, dns::RCode::kNoError);
  if (wire_cache_ != nullptr) wire_fill(query, question);
  return true;
}

void ForwarderEngine::warm_start_from_snapshot() {
  // Replayed entries carry absolute stamps from the previous process; a
  // fresh-or-stale subset of them is promoted so the first epoch after a
  // restart behaves like the steady state before it. TTLs are decayed to
  // their remaining lifetime at insert, keeping every tier's expiry instant
  // identical to the original one.
  std::vector<dns::ResourceRecord> records;
  snapshot_->for_each([&](const dns::DnsName& name, dns::RRType type,
                          SimTime inserted_at, std::uint32_t /*ttl_s*/,
                          const std::vector<std::uint8_t>& rrset) {
    if (!dns::SharedPacketCache::decode_rrset(rrset, records)) return;
    const std::uint32_t age_s = dns::tier_age_s(inserted_at, sim_.now());
    std::uint32_t min_remaining = UINT32_MAX;
    for (auto& rr : records) {
      rr.ttl = dns::tier_decay_ttl(rr.ttl, age_s);
      min_remaining = std::min(min_remaining, rr.ttl);
    }
    if (min_remaining == 0) return;  // expired: lookup() may still serve stale
    if (config_.cache_enabled) {
      cache_.insert(name, type, records, sim_.now());
    }
    if (config_.l2 != nullptr) {
      config_.l2->insert(config_.shard_index, name, type, records,
                         sim_.now());
    }
    ++warm_loaded_;
  });
}

bool ForwarderEngine::apply_policy_verdict(const policy::Verdict& verdict,
                                           const Waiter& waiter,
                                           const dns::Question& question) {
  switch (verdict.action) {
    case policy::ActionKind::kAllow:
    case policy::ActionKind::kRoutePool:
      return false;
    case policy::ActionKind::kDrop:
      // Silent drop: no response at all. The client experiences a timeout,
      // so the taxonomy books it as a deliberate teardown (kCancelled).
      ++policy_dropped_;
      policy_errors_.record(util::ErrorClass::kCancelled);
      return true;
    case policy::ActionKind::kRefuse:
      ++policy_refused_;
      policy_errors_.record(util::ErrorClass::kRcode);
      scratch_response_.answers.clear();
      send_response(waiter, question, verdict.rcode);
      return true;
    case policy::ActionKind::kTruncate:
      // TC=1, empty answer: a real stub would retry over TCP — in this
      // testbed it is the "slow-path the abuser" action.
      ++policy_truncated_;
      policy_errors_.record(util::ErrorClass::kTruncated);
      scratch_response_.answers.clear();
      send_response(waiter, question, dns::RCode::kNoError, /*tc=*/true);
      return true;
  }
  return false;
}

void ForwarderEngine::on_stub_batch(std::span<net::Datagram> batch) {
  // Drain the whole burst in this one event, staging responses; a single
  // sendmmsg-style flush then pushes them into the fabric in order — the
  // same per-packet semantics as immediate sends, amortized.
  batching_ = true;
  for (net::Datagram& datagram : batch) {
    on_stub_query(datagram.from, std::move(datagram.payload));
  }
  batching_ = false;
  if (!response_flush_.empty()) listener_->send_batch(response_flush_);
}

bool ForwarderEngine::try_answer_wire(const net::Endpoint& from,
                                      const util::Buffer& payload) {
  ++wire_lookups_;
  dns::WireCache::Hit hit;
  if (!wire_cache_->probe(payload, sim_.now(), hit)) return false;

  // A hit implies a prior fill, and fills only happen for queries that
  // passed the full decode — this exact image is safe to answer raw. The
  // question is materialized lazily: only policy and the stale-refresh
  // path need it, so the hot hit with an empty chain never parses a name.
  const bool need_question = !chain_.empty() || hit.stale;
  if (need_question &&
      !dns::WireCache::parse_question(payload, scratch_wire_question_)) {
    return false;  // cannot happen for a filled entry; decode path decides
  }

  const std::span<const std::uint8_t> query = payload.view();
  const Waiter waiter{
      from,
      static_cast<std::uint16_t>((std::uint16_t(query[0]) << 8) | query[1]),
      sim_.now()};
  ++queries_;
  if (first_query_at_ < 0) first_query_at_ = sim_.now();
  last_query_at_ = sim_.now();

  std::uint32_t pool_index = 0;
  if (!chain_.empty()) {
    const policy::Verdict verdict = chain_.evaluate(
        policy::QueryInfo{from.address, scratch_wire_question_.name,
                          scratch_wire_question_.type, sim_.now()});
    if (apply_policy_verdict(verdict, waiter, scratch_wire_question_)) {
      return true;
    }
    pool_index = verdict.pool;
    if (pool_index != 0) ++policy_routed_;
  }

  ++wire_hits_;
  ship(waiter.from, wire_cache_->materialize(hit, query));
  latency_ms_.push_back(to_ms(sim_.now() - waiter.arrived));
  if (hit.stale) {
    // RFC 8767, mirroring the L1 stale path: the stale image just went out
    // (and was evicted by materialize); refresh in the background.
    ++stale_hits_;
    const KeyView key_view{scratch_wire_question_.name,
                           scratch_wire_question_.type};
    if (inflight_.find(key_view) == inflight_.end()) {
      ++stale_refreshes_;
      auto [it, inserted] = inflight_.try_emplace(
          Key{scratch_wire_question_.name, scratch_wire_question_.type});
      start_resolve(it->first, scratch_wire_question_, pool_index);
    }
  }
  return true;
}

void ForwarderEngine::wire_fill(std::span<const std::uint8_t> query,
                                const dns::Question& question) {
  // The scratch response still holds the answer that was just shipped;
  // re-encoding it here costs one extra encode per *fill* (first hit of a
  // key per TTL window), never per steady-state query.
  if (!wire_cache_->insert(query, scratch_response_.encode_buffer(),
                           sim_.now())) {
    return;
  }
  if (config_.l2 != nullptr) {
    // Offer the freshly-hot records to the shared L2 so sibling shards can
    // serve them after the next epoch sweep.
    config_.l2->insert(config_.shard_index, question.name, question.type,
                       scratch_response_.answers, sim_.now());
  }
}

void ForwarderEngine::on_stub_query(const net::Endpoint& from,
                                    util::Buffer payload) {
  // Raw-wire fast path: a repeat query is answered by patching bytes in a
  // cached response image, skipping decode/encode entirely.
  if (wire_cache_ != nullptr && try_answer_wire(from, payload)) return;
  // Decode into the reusable scratch message: label/rdata storage is
  // retained across queries, so the steady-state path allocates nothing.
  if (!dns::Message::decode_into(payload, scratch_query_)) return;
  const dns::Message& query = scratch_query_;
  if (query.qr || query.questions.empty()) return;
  const dns::Question& question = query.questions.front();
  const KeyView key_view{question.name, question.type};
  const Waiter waiter{from, query.id, sim_.now()};

  ++queries_;
  if (first_query_at_ < 0) first_query_at_ = sim_.now();
  last_query_at_ = sim_.now();

  // Policy runs BEFORE cache and coalescing: abusive traffic must not touch
  // (and thus never pollutes or probes) any downstream mechanism. An empty
  // chain evaluates to kAllow without a branch per rule.
  std::uint32_t pool_index = 0;
  if (!chain_.empty()) {
    const policy::Verdict verdict = chain_.evaluate(policy::QueryInfo{
        from.address, question.name, question.type, sim_.now()});
    if (apply_policy_verdict(verdict, waiter, question)) return;
    pool_index = verdict.pool;
    if (pool_index != 0) ++policy_routed_;
  }

  if (config_.cache_enabled) {
    if (config_.serve_stale) {
      if (auto found = cache_.lookup_stale_ref(question.name, question.type,
                                               sim_.now(),
                                               config_.max_stale)) {
        if (!found->stale) {
          ++cache_hits_;
          answer_cached(waiter, question, *found);
          if (wire_cache_ != nullptr) wire_fill(payload, question);
          return;
        }
        // RFC 8767: answer stale immediately, refresh in the background.
        ++stale_hits_;
        answer_cached(waiter, question, *found);
        if (inflight_.find(key_view) == inflight_.end()) {
          ++stale_refreshes_;
          // Refresh entry with no waiters.
          auto [it, inserted] =
              inflight_.try_emplace(Key{question.name, question.type});
          start_resolve(it->first, question, pool_index);
        }
        return;
      }
    } else if (auto found = cache_.lookup_ref(question.name, question.type,
                                              sim_.now())) {
      ++cache_hits_;
      answer_cached(waiter, question, *found);
      if (wire_cache_ != nullptr) wire_fill(payload, question);
      return;
    }
  }

  // L1 had neither a fresh nor a stale entry: walk down the hierarchy —
  // shared L2, then the persistent snapshot — before paying (or joining)
  // an upstream resolve.
  if (config_.l2 != nullptr &&
      try_answer_l2(waiter, question, payload, pool_index)) {
    return;
  }
  if (snapshot_ != nullptr &&
      try_answer_snapshot(waiter, question, payload, pool_index)) {
    return;
  }

  if (config_.coalesce) {
    auto it = inflight_.find(key_view);
    if (it != inflight_.end()) {
      ++coalesced_;
      it->second.waiters.push_back(waiter);
      return;
    }
  }
  ++misses_;
  if (!config_.coalesce) {
    // Every query pays its own upstream resolve (the ablation baseline).
    ++upstream_resolves_;
    pools_[pool_index]->resolve(
        question, [this, waiter, question](dox::QueryResult result) {
          deliver({waiter}, question, std::move(result));
        });
    return;
  }
  auto [it, inserted] =
      inflight_.try_emplace(Key{question.name, question.type});
  it->second.waiters.push_back(waiter);
  start_resolve(it->first, question, pool_index);
}

void ForwarderEngine::start_resolve(const Key& key,
                                    const dns::Question& question,
                                    std::uint32_t pool_index) {
  ++upstream_resolves_;
  pools_[pool_index]->resolve(
      question, [this, key, question](dox::QueryResult result) {
        on_upstream_result(key, question, std::move(result));
      });
}

void ForwarderEngine::on_upstream_result(const Key& key,
                                         const dns::Question& question,
                                         dox::QueryResult result) {
  auto it = inflight_.find(key);
  std::vector<Waiter> waiters;
  if (it != inflight_.end()) {
    waiters = std::move(it->second.waiters);
    inflight_.erase(it);
  }
  deliver(std::move(waiters), question, std::move(result));
}

void ForwarderEngine::deliver(std::vector<Waiter> waiters,
                              const dns::Question& question,
                              dox::QueryResult result) {
  if (!result.ok()) {
    DOXLAB_DEBUG("engine upstream failure: " << result.error());
    // RFC 8767: a resolution failure is the canonical serve-stale trigger —
    // prefer stale data over SERVFAIL while it lasts.
    if (config_.cache_enabled && config_.serve_stale) {
      if (auto found = cache_.lookup_stale(question.name, question.type,
                                           sim_.now(), config_.max_stale,
                                           config_.stale_ttl);
          found && found->stale) {
        stale_hits_ += waiters.size();
        for (const Waiter& waiter : waiters) {
          answer(waiter, question, found->records);
        }
        return;
      }
    }
    for (const Waiter& waiter : waiters) answer_servfail(waiter, question);
    return;
  }

  std::vector<dns::ResourceRecord> records =
      clamp_ttls(result.response.answers);
  if (config_.cache_enabled) {
    cache_.insert(question.name, question.type, records, sim_.now());
  }
  if (config_.l2 != nullptr) {
    // Deferred insert: parks on this shard's lane; visible to every shard
    // after the next epoch-barrier sweep.
    config_.l2->insert(config_.shard_index, question.name, question.type,
                       records, sim_.now());
  }
  if (snapshot_ != nullptr) {
    // Persist with the absolute stamp: a restarted engine replays this and
    // serves the remaining lifetime, not a reset TTL.
    snapshot_->insert(question.name, question.type, records, sim_.now());
  }
  for (const Waiter& waiter : waiters) {
    answer(waiter, question, records);
  }
}

EngineStats ForwarderEngine::stats() const {
  EngineStats s;
  s.queries = queries_;
  s.cache_hits = cache_hits_;
  s.stale_hits = stale_hits_;
  s.wire_hits = wire_hits_;
  s.wire_lookups = wire_lookups_;
  s.misses = misses_;
  s.coalesced = coalesced_;
  s.l2_hits = l2_hits_;
  s.l2_lookups = l2_lookups_;
  s.upstream_resolves = upstream_resolves_;
  s.stale_refreshes = stale_refreshes_;
  s.servfails_sent = servfails_sent_;
  s.cache_evictions = cache_.evictions();
  const dns::TierStats l1 = cache_.tier_stats();
  s.l1_lookups = l1.lookups;
  s.l1_evictions = l1.evictions;
  s.l1_entries = l1.entries;
  s.l1_bytes = l1.bytes;
  if (wire_cache_ != nullptr) {
    const dns::TierStats wire = wire_cache_->tier_stats();
    s.wire_evictions = wire.evictions;
    s.wire_entries = wire.entries;
    s.wire_bytes = wire.bytes;
  }
  if (snapshot_ != nullptr) {
    const dns::TierStats snap = snapshot_->tier_stats();
    s.snapshot_hits = snapshot_hits_;
    s.snapshot_lookups = snapshot_lookups_;
    s.snapshot_evictions = snap.evictions;
    s.snapshot_entries = snap.entries;
    s.snapshot_bytes = snap.bytes;
    s.snapshot_warm_loaded = warm_loaded_;
  }
  for (const auto& pool : pools_) {
    s.upstream_attempts += pool->attempts_issued();
    s.failovers += pool->failovers();
    s.upstream_errors.add(pool->error_counts());
    auto health = pool->health();
    s.upstreams.insert(s.upstreams.end(),
                       std::make_move_iterator(health.begin()),
                       std::make_move_iterator(health.end()));
  }
  s.policy_evaluations = chain_.evaluations();
  s.policy_dropped = policy_dropped_;
  s.policy_refused = policy_refused_;
  s.policy_truncated = policy_truncated_;
  s.policy_routed = policy_routed_;
  s.policy_errors = policy_errors_;
  s.policy_rules = chain_.stats();
  return s;
}

void EngineStats::add(const EngineStats& other) {
  queries += other.queries;
  cache_hits += other.cache_hits;
  stale_hits += other.stale_hits;
  wire_hits += other.wire_hits;
  wire_lookups += other.wire_lookups;
  misses += other.misses;
  coalesced += other.coalesced;
  l2_hits += other.l2_hits;
  l2_lookups += other.l2_lookups;
  upstream_resolves += other.upstream_resolves;
  upstream_attempts += other.upstream_attempts;
  failovers += other.failovers;
  stale_refreshes += other.stale_refreshes;
  servfails_sent += other.servfails_sent;
  cache_evictions += other.cache_evictions;
  l1_lookups += other.l1_lookups;
  l1_evictions += other.l1_evictions;
  l1_entries += other.l1_entries;
  l1_bytes += other.l1_bytes;
  l2_evictions += other.l2_evictions;
  l2_entries += other.l2_entries;
  l2_bytes += other.l2_bytes;
  wire_evictions += other.wire_evictions;
  wire_entries += other.wire_entries;
  wire_bytes += other.wire_bytes;
  snapshot_hits += other.snapshot_hits;
  snapshot_lookups += other.snapshot_lookups;
  snapshot_evictions += other.snapshot_evictions;
  snapshot_entries += other.snapshot_entries;
  snapshot_bytes += other.snapshot_bytes;
  snapshot_warm_loaded += other.snapshot_warm_loaded;
  upstream_errors.add(other.upstream_errors);
  upstreams.insert(upstreams.end(), other.upstreams.begin(),
                   other.upstreams.end());
  policy_evaluations += other.policy_evaluations;
  policy_dropped += other.policy_dropped;
  policy_refused += other.policy_refused;
  policy_truncated += other.policy_truncated;
  policy_routed += other.policy_routed;
  policy_errors.add(other.policy_errors);
  link_packets += other.link_packets;
  link_drops += other.link_drops;
  link_burst_losses += other.link_burst_losses;
  link_queue_peak = std::max(link_queue_peak, other.link_queue_peak);
  bool aligned = policy_rules.size() == other.policy_rules.size();
  for (std::size_t i = 0; aligned && i < policy_rules.size(); ++i) {
    aligned = policy_rules[i].name == other.policy_rules[i].name &&
              policy_rules[i].matcher == other.policy_rules[i].matcher &&
              policy_rules[i].action == other.policy_rules[i].action;
  }
  if (aligned) {
    for (std::size_t i = 0; i < policy_rules.size(); ++i) {
      policy_rules[i].matches += other.policy_rules[i].matches;
    }
  } else {
    policy_rules.insert(policy_rules.end(), other.policy_rules.begin(),
                        other.policy_rules.end());
  }
}

double ForwarderEngine::observed_qps() const {
  if (queries_ < 2 || last_query_at_ <= first_query_at_) return 0.0;
  return static_cast<double>(queries_) /
         (static_cast<double>(last_query_at_ - first_query_at_) /
          static_cast<double>(kSecond));
}

}  // namespace doxlab::engine
