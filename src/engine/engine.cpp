#include "engine/engine.h"

#include "util/logging.h"

namespace doxlab::engine {

ForwarderEngine::ForwarderEngine(sim::Simulator& sim,
                                 net::UdpStack& stub_udp,
                                 const dox::TransportDeps& upstream_deps,
                                 std::vector<UpstreamConfig> upstreams,
                                 EngineConfig config)
    : sim_(sim),
      config_(config),
      pool_(sim, upstream_deps, std::move(upstreams), config.pool) {
  cache_.set_capacity(config_.cache_capacity);
  listener_ = stub_udp.bind(config_.listen_port);
  listener_->on_datagram([this](const net::Endpoint& from,
                                util::Buffer payload) {
    on_stub_query(from, std::move(payload));
  });
}

std::vector<dns::ResourceRecord> ForwarderEngine::clamp_ttls(
    std::vector<dns::ResourceRecord> records) const {
  if (config_.min_ttl == 0 && config_.max_ttl == 0) return records;
  for (auto& rr : records) {
    if (config_.max_ttl != 0 && rr.ttl > config_.max_ttl) {
      rr.ttl = config_.max_ttl;
    }
    if (rr.ttl < config_.min_ttl) rr.ttl = config_.min_ttl;
  }
  return records;
}

void ForwarderEngine::send_response(const Waiter& waiter,
                                    const dns::Question& question,
                                    dns::RCode rcode) {
  dns::Message& response = scratch_response_;
  response.id = waiter.stub_id;
  response.qr = true;
  response.ra = true;
  response.rcode = rcode;
  // Copy-assign into retained storage: after warm-up neither the question
  // slot nor the pooled encode buffer allocates.
  response.questions.resize(1);
  response.questions[0] = question;
  response.authorities.clear();
  response.additionals.clear();
  listener_->send_to(waiter.from, response.encode_buffer());
  latency_ms_.push_back(to_ms(sim_.now() - waiter.arrived));
}

void ForwarderEngine::answer(const Waiter& waiter,
                             const dns::Question& question,
                             std::vector<dns::ResourceRecord> records) {
  scratch_response_.answers = std::move(records);
  send_response(waiter, question, dns::RCode::kNoError);
}

void ForwarderEngine::answer_cached(const Waiter& waiter,
                                    const dns::Question& question,
                                    const dns::EntryRef& found) {
  std::vector<dns::ResourceRecord>& answers = scratch_response_.answers;
  answers = *found.records;
  if (found.stale) {
    for (auto& rr : answers) rr.ttl = config_.stale_ttl;
  } else if (found.age_s > 0) {
    for (auto& rr : answers) {
      rr.ttl = rr.ttl > found.age_s ? rr.ttl - found.age_s : 0;
    }
  }
  send_response(waiter, question, dns::RCode::kNoError);
}

void ForwarderEngine::answer_servfail(const Waiter& waiter,
                                      const dns::Question& question) {
  ++servfails_sent_;
  scratch_response_.answers.clear();
  send_response(waiter, question, dns::RCode::kServFail);
}

void ForwarderEngine::on_stub_query(const net::Endpoint& from,
                                    util::Buffer payload) {
  // Decode into the reusable scratch message: label/rdata storage is
  // retained across queries, so the steady-state path allocates nothing.
  if (!dns::Message::decode_into(payload, scratch_query_)) return;
  const dns::Message& query = scratch_query_;
  if (query.qr || query.questions.empty()) return;
  const dns::Question& question = query.questions.front();
  const KeyView key_view{question.name, question.type};
  const Waiter waiter{from, query.id, sim_.now()};

  ++queries_;
  if (first_query_at_ < 0) first_query_at_ = sim_.now();
  last_query_at_ = sim_.now();

  if (config_.cache_enabled) {
    if (config_.serve_stale) {
      if (auto found = cache_.lookup_stale_ref(question.name, question.type,
                                               sim_.now(),
                                               config_.max_stale)) {
        if (!found->stale) {
          ++cache_hits_;
          answer_cached(waiter, question, *found);
          return;
        }
        // RFC 8767: answer stale immediately, refresh in the background.
        ++stale_hits_;
        answer_cached(waiter, question, *found);
        if (inflight_.find(key_view) == inflight_.end()) {
          ++stale_refreshes_;
          // Refresh entry with no waiters.
          auto [it, inserted] =
              inflight_.try_emplace(Key{question.name, question.type});
          start_resolve(it->first, question);
        }
        return;
      }
    } else if (auto found = cache_.lookup_ref(question.name, question.type,
                                              sim_.now())) {
      ++cache_hits_;
      answer_cached(waiter, question, *found);
      return;
    }
  }

  if (config_.coalesce) {
    auto it = inflight_.find(key_view);
    if (it != inflight_.end()) {
      ++coalesced_;
      it->second.waiters.push_back(waiter);
      return;
    }
  }
  ++misses_;
  if (!config_.coalesce) {
    // Every query pays its own upstream resolve (the ablation baseline).
    ++upstream_resolves_;
    pool_.resolve(question, [this, waiter, question](dox::QueryResult result) {
      deliver({waiter}, question, std::move(result));
    });
    return;
  }
  auto [it, inserted] =
      inflight_.try_emplace(Key{question.name, question.type});
  it->second.waiters.push_back(waiter);
  start_resolve(it->first, question);
}

void ForwarderEngine::start_resolve(const Key& key,
                                    const dns::Question& question) {
  ++upstream_resolves_;
  pool_.resolve(question, [this, key, question](dox::QueryResult result) {
    on_upstream_result(key, question, std::move(result));
  });
}

void ForwarderEngine::on_upstream_result(const Key& key,
                                         const dns::Question& question,
                                         dox::QueryResult result) {
  auto it = inflight_.find(key);
  std::vector<Waiter> waiters;
  if (it != inflight_.end()) {
    waiters = std::move(it->second.waiters);
    inflight_.erase(it);
  }
  deliver(std::move(waiters), question, std::move(result));
}

void ForwarderEngine::deliver(std::vector<Waiter> waiters,
                              const dns::Question& question,
                              dox::QueryResult result) {
  if (!result.ok()) {
    DOXLAB_DEBUG("engine upstream failure: " << result.error());
    // RFC 8767: a resolution failure is the canonical serve-stale trigger —
    // prefer stale data over SERVFAIL while it lasts.
    if (config_.cache_enabled && config_.serve_stale) {
      if (auto found = cache_.lookup_stale(question.name, question.type,
                                           sim_.now(), config_.max_stale,
                                           config_.stale_ttl);
          found && found->stale) {
        stale_hits_ += waiters.size();
        for (const Waiter& waiter : waiters) {
          answer(waiter, question, found->records);
        }
        return;
      }
    }
    for (const Waiter& waiter : waiters) answer_servfail(waiter, question);
    return;
  }

  std::vector<dns::ResourceRecord> records =
      clamp_ttls(result.response.answers);
  if (config_.cache_enabled) {
    cache_.insert(question.name, question.type, records, sim_.now());
  }
  for (const Waiter& waiter : waiters) {
    answer(waiter, question, records);
  }
}

EngineStats ForwarderEngine::stats() const {
  EngineStats s;
  s.queries = queries_;
  s.cache_hits = cache_hits_;
  s.stale_hits = stale_hits_;
  s.misses = misses_;
  s.coalesced = coalesced_;
  s.upstream_resolves = upstream_resolves_;
  s.upstream_attempts = pool_.attempts_issued();
  s.failovers = pool_.failovers();
  s.stale_refreshes = stale_refreshes_;
  s.servfails_sent = servfails_sent_;
  s.cache_evictions = cache_.evictions();
  s.upstream_errors = pool_.error_counts();
  s.upstreams = pool_.health();
  return s;
}

double ForwarderEngine::observed_qps() const {
  if (queries_ < 2 || last_query_at_ <= first_query_at_) return 0.0;
  return static_cast<double>(queries_) /
         (static_cast<double>(last_query_at_ - first_query_at_) /
          static_cast<double>(kSecond));
}

}  // namespace doxlab::engine
