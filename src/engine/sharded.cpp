#include "engine/sharded.h"

#include <ctime>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace doxlab::engine {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// CPU time consumed by the CALLING thread, in milliseconds. Shard busy
/// time is charged in thread CPU time, not wall time: when the host has
/// fewer cores than shards the OS interleaves the workers, and a wall
/// clock would bill every shard for its neighbours' timeslices — thread
/// CPU time measures only the work this shard actually did, so the
/// critical-path metric is meaningful on any host.
double thread_cpu_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
#else
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
#endif
}

/// The global arrival schedule: the same Poisson process / uniform client
/// choice / Zipf name draw LoadGenerator performs, generated in one pass so
/// the offered load is a function of the seed alone — never of the shard
/// count that will replay it.
std::vector<Arrival> generate_schedule(const ShardedConfig& config) {
  Rng rng(config.seed);

  std::vector<double> name_cdf;
  name_cdf.reserve(config.names);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= config.names; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), config.zipf_exponent);
    name_cdf.push_back(total);
  }

  std::vector<Arrival> schedule;
  schedule.reserve(static_cast<std::size_t>(
      config.qps * (static_cast<double>(config.duration) / kSecond) * 1.1));
  const double mean_gap_us =
      static_cast<double>(kSecond) / std::max(config.qps, 1e-9);
  SimTime at = 0;
  while (true) {
    at += std::max<SimTime>(
        1, static_cast<SimTime>(rng.exponential(mean_gap_us)));
    if (at >= config.duration) break;
    Arrival arrival;
    arrival.at = at;
    arrival.client = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config.clients) - 1));
    const double u = rng.uniform_real(0.0, name_cdf.back());
    const auto it = std::upper_bound(name_cdf.begin(), name_cdf.end(), u);
    arrival.name = static_cast<std::uint32_t>(
        std::min<std::size_t>(it - name_cdf.begin(), config.names - 1));
    schedule.push_back(arrival);
  }
  return schedule;
}

}  // namespace

ShardedResult run_sharded(const ShardedConfig& config) {
  const std::uint32_t n = std::max<std::uint32_t>(1, config.shards);
  const auto wall_start = Clock::now();

  const std::vector<Arrival> schedule = generate_schedule(config);
  std::vector<std::vector<Arrival>> slices(n);
  for (auto& slice : slices) slice.reserve(schedule.size() / n + 16);
  for (const Arrival& arrival : schedule) {
    slices[shard_of(config, client_source(config, arrival.client))]
        .push_back(arrival);
  }

  dns::SharedPacketCache l2(config.l2_capacity, n);
  dns::SharedPacketCache* l2_ptr = config.l2_capacity > 0 ? &l2 : nullptr;
  if (config.engine.l2_serve_stale && config.engine.serve_stale) {
    // Stale serving needs expired entries to survive the barrier sweeps for
    // the whole stale window.
    l2.set_stale_retention(config.engine.max_stale);
  }

  std::vector<std::unique_ptr<EngineShard>> shards;
  shards.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    shards.push_back(
        std::make_unique<EngineShard>(config, i, slices[i], l2_ptr));
  }

  ShardedResult result;
  util::ThreadPool pool(config.threads);
  std::vector<double> busy_ms(n, 0.0);
  std::vector<double> epoch_busy_ms(n, 0.0);

  // Arrival window plus the same settle slack run_scenario allows: client
  // timeout and a full pool fallback walk for the stragglers.
  const SimTime end =
      config.duration + config.client_timeout + 15 * kSecond;
  const SimTime epoch = std::max<SimTime>(1, config.epoch);
  SimTime deadline = 0;
  while (deadline < end) {
    // Epoch-barrier while the swarms are active; once every shard is past
    // the arrival window with no query in flight, the rest of the settle
    // window collapses into one final epoch (event streams are unchanged —
    // a shard executes its queue in the same order however it is sliced).
    bool all_drained = true;
    for (const auto& shard : shards) {
      if (!shard->drained()) {
        all_drained = false;
        break;
      }
    }
    deadline = all_drained ? end : std::min(end, deadline + epoch);
    // Parallel phase: every shard runs to the epoch boundary. Each worker
    // writes only its own busy slot — no sharing, no synchronization needed
    // beyond the pool's own completion barrier.
    pool.parallel_for(n, [&](std::size_t i) {
      const double start = thread_cpu_ms();
      shards[i]->run_until(deadline);
      epoch_busy_ms[i] = thread_cpu_ms() - start;
    });
    double slowest = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      busy_ms[i] += epoch_busy_ms[i];
      slowest = std::max(slowest, epoch_busy_ms[i]);
    }
    // Serial phase: merge the shards' deferred L2 inserts. All shard clocks
    // sit exactly at `deadline`, so that is the sweep's notion of now.
    const double sweep_start = thread_cpu_ms();
    if (l2_ptr != nullptr) l2_ptr->sweep(deadline);
    const double swept = thread_cpu_ms() - sweep_start;
    result.sweep_ms += swept;
    result.critical_path_ms += slowest + swept;
    ++result.epochs;
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    ShardOutcome outcome;
    outcome.index = i;
    outcome.engine = shards[i]->engine_stats();
    outcome.load = shards[i]->report();
    outcome.arrivals = shards[i]->arrivals_scheduled();
    outcome.events = shards[i]->events_executed();
    outcome.stream_digest = shards[i]->stream_digest();
    outcome.outcome_digest = shards[i]->outcome_digest();
    outcome.busy_ms = busy_ms[i];

    result.engine.add(outcome.engine);
    result.load.sent += outcome.load.sent;
    result.load.answered += outcome.load.answered;
    result.load.servfails += outcome.load.servfails;
    result.load.timeouts += outcome.load.timeouts;
    result.load.shed += outcome.load.shed;
    result.load.latency_ms.insert(result.load.latency_ms.end(),
                                  outcome.load.latency_ms.begin(),
                                  outcome.load.latency_ms.end());
    result.merged_digest =
        (result.merged_digest * 0x100000001B3ull) ^ outcome.stream_digest;
    result.outcome_digest += outcome.outcome_digest;
    result.shards.push_back(std::move(outcome));
  }
  result.l2 = l2.stats();
  // The shared tier's occupancy is stamped once onto the merged stats (the
  // per-shard rows carry only each shard's own hit/lookup counters), so the
  // merge never multi-counts one table.
  result.engine.l2_evictions = result.l2.expired_evicted;
  result.engine.l2_entries = result.l2.size;
  result.engine.l2_bytes = result.l2.bytes;
  result.total_arrivals = schedule.size();
  result.wall_ms = ms_since(wall_start);
  return result;
}

}  // namespace doxlab::engine
