// The forwarder engine — a production-shaped descendant of proxy::DnsProxy.
//
// Where `DnsProxy` forwards one stub client to one upstream transport with
// its cache off (the paper's measurement configuration), `ForwarderEngine`
// serves *many* concurrent stub clients against a *pool* of upstream DoX
// resolvers:
//
//   * in-flight query coalescing — identical (qname, qtype) queries from
//     different clients share one upstream resolve; the answer fans back
//     out to every waiter with its own transaction id;
//   * a bounded shared cache (dns::Cache + LRU capacity) with RFC 8767
//     serve-stale: an expired entry is answered immediately with a clamped
//     TTL while a background refresh re-resolves it, and a resolution
//     failure falls back to stale data before SERVFAIL;
//   * cross-protocol upstream fallback with health tracking, via
//     `UpstreamPool` (DoQ -> DoT -> DoUDP, Happy-Eyeballs-style);
//   * a stats surface: qps, coalesce rate, hit/stale/miss split, SERVFAILs,
//     per-upstream health, and client-visible latency samples for
//     percentile reporting through src/stats.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "dns/cache.h"
#include "engine/upstream_pool.h"
#include "net/udp.h"

namespace doxlab::engine {

struct EngineConfig {
  /// Local port the stub listener binds.
  std::uint16_t listen_port = 53;
  /// Share one upstream resolve among identical concurrent queries.
  bool coalesce = true;
  bool cache_enabled = true;
  /// Cache capacity bound (entries); 0 = unbounded.
  std::size_t cache_capacity = 4096;
  /// RFC 8767 serve-stale: answer expired entries immediately and refresh
  /// in the background.
  bool serve_stale = true;
  /// How long past expiry an entry may still be served.
  SimTime max_stale = 10 * kMinute;
  /// TTL (seconds) stamped on stale answers (RFC 8767 §4 recommends <= 30).
  std::uint32_t stale_ttl = 30;
  /// Clamp record TTLs on cache insert (seconds; 0 = no clamp). A low
  /// `max_ttl` forces refresh traffic — the serve-stale ablation knob.
  std::uint32_t min_ttl = 0;
  std::uint32_t max_ttl = 0;
  /// Upstream pool behaviour (timeouts, health thresholds, selection).
  PoolConfig pool;
};

/// Counters + health snapshot (cheap to copy; taken at any time).
struct EngineStats {
  std::uint64_t queries = 0;         ///< well-formed stub queries received
  std::uint64_t cache_hits = 0;      ///< answered fresh from cache
  std::uint64_t stale_hits = 0;      ///< answered stale (RFC 8767)
  std::uint64_t misses = 0;          ///< needed an upstream resolve
  std::uint64_t coalesced = 0;       ///< joined an in-flight resolve
  std::uint64_t upstream_resolves = 0;  ///< pool resolves started
  std::uint64_t upstream_attempts = 0;  ///< transport attempts (incl. retries)
  std::uint64_t failovers = 0;       ///< attempts beyond a query's first
  std::uint64_t stale_refreshes = 0; ///< background refreshes triggered
  std::uint64_t servfails_sent = 0;  ///< mirrors proxy::DnsProxy's counter
  std::uint64_t cache_evictions = 0; ///< LRU evictions in the shared cache
  /// Failed upstream attempts, tallied per util::ErrorClass (timeouts,
  /// resets, REFUSED answers, ...).
  util::ErrorCounters upstream_errors;
  std::vector<UpstreamHealth> upstreams;

  /// Fraction of cache-missing queries that coalesced onto an existing
  /// in-flight resolve.
  double coalesce_rate() const {
    const std::uint64_t candidates = misses + coalesced;
    return candidates == 0
               ? 0.0
               : static_cast<double>(coalesced) /
                     static_cast<double>(candidates);
  }
};

class ForwarderEngine {
 public:
  /// Binds the stub listener on `stub_udp` and creates upstream transports
  /// from `deps` as the pool first uses them.
  ForwarderEngine(sim::Simulator& sim, net::UdpStack& stub_udp,
                  const dox::TransportDeps& upstream_deps,
                  std::vector<UpstreamConfig> upstreams, EngineConfig config);

  ForwarderEngine(const ForwarderEngine&) = delete;
  ForwarderEngine& operator=(const ForwarderEngine&) = delete;

  /// Drops upstream connections (keeps tickets/tokens).
  void reset_sessions() { pool_.reset_sessions(); }

  const EngineConfig& config() const { return config_; }
  UpstreamPool& pool() { return pool_; }
  const dns::Cache& cache() const { return cache_; }

  EngineStats stats() const;
  /// Client-visible latency samples in ms (arrival -> answer), for
  /// percentile reporting. Cache hits contribute 0.
  const std::vector<double>& latency_samples_ms() const {
    return latency_ms_;
  }
  /// Sustained query rate over the window between first and last query.
  double observed_qps() const;

 private:
  struct Key {
    dns::DnsName name;
    dns::RRType type = dns::RRType::kA;
    bool operator==(const Key&) const = default;
  };
  /// Borrowed key so the steady-state paths never copy a DnsName just to
  /// probe the in-flight table.
  struct KeyView {
    const dns::DnsName& name;
    dns::RRType type;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t mix(const dns::DnsName& name,
                           dns::RRType type) noexcept {
      return std::hash<dns::DnsName>()(name) ^
             (static_cast<std::size_t>(type) * 0x9E3779B97F4A7C15ull);
    }
    std::size_t operator()(const Key& k) const noexcept {
      return mix(k.name, k.type);
    }
    std::size_t operator()(const KeyView& k) const noexcept {
      return mix(k.name, k.type);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const KeyView& a, const Key& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const Key& a, const KeyView& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
  };

  struct Waiter {
    net::Endpoint from;
    std::uint16_t stub_id = 0;
    SimTime arrived = 0;
  };
  struct InFlight {
    std::vector<Waiter> waiters;  ///< empty for a pure background refresh
  };

  void on_stub_query(const net::Endpoint& from,
                     util::Buffer payload);
  void answer(const Waiter& waiter, const dns::Question& question,
              std::vector<dns::ResourceRecord> records);
  /// Allocation-lean answer straight from a cache hit: records are copied
  /// into the reusable scratch response (capacity is retained across
  /// queries) with TTLs decayed/clamped in place.
  void answer_cached(const Waiter& waiter, const dns::Question& question,
                     const dns::EntryRef& found);
  void answer_servfail(const Waiter& waiter, const dns::Question& question);
  /// Stamps header flags on the scratch response and ships it as one pooled
  /// buffer.
  void send_response(const Waiter& waiter, const dns::Question& question,
                     dns::RCode rcode);
  /// Starts an upstream resolve for `key` (coalescing point).
  void start_resolve(const Key& key, const dns::Question& question);
  void on_upstream_result(const Key& key, const dns::Question& question,
                          dox::QueryResult result);
  /// Caches a successful result and fans it out (or stale/SERVFAIL on
  /// failure) to `waiters`.
  void deliver(std::vector<Waiter> waiters, const dns::Question& question,
               dox::QueryResult result);
  std::vector<dns::ResourceRecord> clamp_ttls(
      std::vector<dns::ResourceRecord> records) const;

  sim::Simulator& sim_;
  EngineConfig config_;
  std::unique_ptr<net::UdpSocket> listener_;
  UpstreamPool pool_;
  dns::Cache cache_;
  std::unordered_map<Key, InFlight, KeyHash, KeyEq> inflight_;
  /// Reusable decode/encode scratch: the cached-answer hot path re-decodes
  /// into and re-encodes from these, so their string/vector storage reaches
  /// a high-water mark and steady-state queries allocate nothing.
  dns::Message scratch_query_;
  dns::Message scratch_response_;

  std::uint64_t queries_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t stale_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t upstream_resolves_ = 0;
  std::uint64_t stale_refreshes_ = 0;
  std::uint64_t servfails_sent_ = 0;
  std::vector<double> latency_ms_;
  SimTime first_query_at_ = -1;
  SimTime last_query_at_ = -1;
};

}  // namespace doxlab::engine
