// The forwarder engine — a production-shaped descendant of proxy::DnsProxy.
//
// Where `DnsProxy` forwards one stub client to one upstream transport with
// its cache off (the paper's measurement configuration), `ForwarderEngine`
// serves *many* concurrent stub clients against a *pool* of upstream DoX
// resolvers:
//
//   * in-flight query coalescing — identical (qname, qtype) queries from
//     different clients share one upstream resolve; the answer fans back
//     out to every waiter with its own transaction id;
//   * a bounded shared cache (dns::Cache + LRU capacity) with RFC 8767
//     serve-stale: an expired entry is answered immediately with a clamped
//     TTL while a background refresh re-resolves it, and a resolution
//     failure falls back to stale data before SERVFAIL;
//   * cross-protocol upstream fallback with health tracking, via
//     `UpstreamPool` (DoQ -> DoT -> DoUDP, Happy-Eyeballs-style);
//   * a compiled policy chain (src/policy) evaluated on every query BEFORE
//     cache and coalescing — drop/refuse/truncate abusive traffic, route
//     qname suffixes to named upstream pools — so attack floods are shed
//     ahead of every expensive mechanism;
//   * a stats surface: qps, coalesce rate, hit/stale/miss split, SERVFAILs,
//     per-upstream health, per-policy-rule hit counters, and client-visible
//     latency samples for percentile reporting through src/stats.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "dns/cache.h"
#include "dns/packet_cache.h"
#include "dns/snapshot_tier.h"
#include "dns/wire_cache.h"
#include "engine/upstream_pool.h"
#include "net/udp.h"
#include "policy/policy.h"

namespace doxlab::engine {

struct EngineConfig {
  /// Local port the stub listener binds.
  std::uint16_t listen_port = 53;
  /// Share one upstream resolve among identical concurrent queries.
  bool coalesce = true;
  bool cache_enabled = true;
  /// Cache capacity bound (entries); 0 = unbounded.
  std::size_t cache_capacity = 4096;
  /// Raw-wire packet cache in front of the L1 (entries; 0 disables — the
  /// default, so existing pinned outputs are untouched). Hits answer by
  /// patching ID/TTLs into a cached response image with no Message
  /// decode/encode; misses fall through to the normal path, which fills it
  /// from L1/L2 hits. Serve-stale behaviour follows the engine's
  /// serve_stale/max_stale/stale_ttl knobs.
  std::size_t wire_cache_capacity = 0;
  /// RFC 8767 serve-stale: answer expired entries immediately and refresh
  /// in the background.
  bool serve_stale = true;
  /// How long past expiry an entry may still be served.
  SimTime max_stale = 10 * kMinute;
  /// TTL (seconds) stamped on stale answers (RFC 8767 §4 recommends <= 30).
  std::uint32_t stale_ttl = 30;
  /// Clamp record TTLs on cache insert (seconds; 0 = no clamp). A low
  /// `max_ttl` forces refresh traffic — the serve-stale ablation knob.
  std::uint32_t min_ttl = 0;
  std::uint32_t max_ttl = 0;
  /// Upstream pool behaviour (timeouts, health thresholds, selection);
  /// shared by every named pool.
  PoolConfig pool;
  /// Policy rule chain, compiled at engine construction against the named
  /// upstream pools. Empty: every query is allowed (zero overhead).
  policy::ChainConfig policy;
  /// Shared L2 packet cache (sharded engine). Not owned; null = no L2.
  /// Consulted only after the local L1 has neither a fresh nor a stale
  /// entry; successful resolves are offered to it as deferred inserts.
  dns::SharedPacketCache* l2 = nullptr;
  /// Serve RFC 8767 stale answers straight from the shared L2 (default off
  /// so every pinned engine digest stays byte-identical): a stale L2 hit is
  /// answered with `stale_ttl` stamped and owes exactly one background
  /// refresh, which re-promotes the fresh answer into the L1. The sharded
  /// runner must also extend the L2's sweep retention to `max_stale`.
  bool l2_serve_stale = false;
  /// This engine's shard index — selects its L2 insert lane and labels its
  /// rows in per-shard reports.
  std::uint32_t shard_index = 0;
  /// Persistent snapshot tier directory (empty = disabled, the default —
  /// pinned artifacts untouched). Each engine owns
  /// `<snapshot_dir>/shard-<shard_index>.snap`: construction replays the
  /// log and warm-starts the L1 (and offers fresh entries to the L2), every
  /// successful resolve is appended, and lookups fall back to it after an
  /// L2 miss — so a restarted engine never pays a cold-miss storm.
  std::string snapshot_dir;
};

/// Counters + health snapshot (cheap to copy; taken at any time).
struct EngineStats {
  std::uint64_t queries = 0;         ///< well-formed stub queries received
  std::uint64_t cache_hits = 0;      ///< answered fresh from the L1 cache
  std::uint64_t stale_hits = 0;      ///< answered stale (RFC 8767; any source)
  std::uint64_t wire_hits = 0;       ///< answered from the raw-wire cache
  std::uint64_t wire_lookups = 0;    ///< queries that probed the wire cache
  std::uint64_t misses = 0;          ///< needed an upstream resolve
  std::uint64_t coalesced = 0;       ///< joined an in-flight resolve
  std::uint64_t l2_hits = 0;         ///< answered from the shared L2 cache
  std::uint64_t l2_lookups = 0;      ///< L1-missing queries that probed L2
  std::uint64_t upstream_resolves = 0;  ///< pool resolves started
  std::uint64_t upstream_attempts = 0;  ///< transport attempts (incl. retries)
  std::uint64_t failovers = 0;       ///< attempts beyond a query's first
  std::uint64_t stale_refreshes = 0; ///< background refreshes triggered
  std::uint64_t servfails_sent = 0;  ///< mirrors proxy::DnsProxy's counter
  std::uint64_t cache_evictions = 0; ///< LRU evictions in the shared cache

  // Per-tier occupancy/traffic surface (dns/cache_tier.h): l1_* mirrors the
  // engine's own dns::Cache, wire_* its WireCache, snapshot_* its
  // SnapshotTier. The shared L2's occupancy (l2_entries/l2_bytes/
  // l2_evictions) is stamped once by the sharded runner on the *merged*
  // stats — per-shard rows carry only the shard's own l2_hits/l2_lookups,
  // so add() can sum every field without multi-counting the shared tier.
  std::uint64_t l1_lookups = 0;
  std::uint64_t l1_evictions = 0;   ///< capacity + expiry (cache_evictions
                                    ///< stays capacity-only for compat)
  std::uint64_t l1_entries = 0;
  std::uint64_t l1_bytes = 0;
  std::uint64_t l2_evictions = 0;
  std::uint64_t l2_entries = 0;
  std::uint64_t l2_bytes = 0;
  std::uint64_t wire_evictions = 0;
  std::uint64_t wire_entries = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t snapshot_hits = 0;      ///< answered from the snapshot tier
  std::uint64_t snapshot_lookups = 0;   ///< L2-missing queries that probed it
  std::uint64_t snapshot_evictions = 0;
  std::uint64_t snapshot_entries = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t snapshot_warm_loaded = 0;  ///< entries promoted at startup
  /// Failed upstream attempts, tallied per util::ErrorClass (timeouts,
  /// resets, REFUSED answers, ...), aggregated across named pools.
  util::ErrorCounters upstream_errors;
  std::vector<UpstreamHealth> upstreams;

  // Policy pipeline surface.
  std::uint64_t policy_evaluations = 0;  ///< queries through the chain
  std::uint64_t policy_dropped = 0;      ///< kDrop: discarded silently
  std::uint64_t policy_refused = 0;      ///< kRefuse: answered with RCODE
  std::uint64_t policy_truncated = 0;    ///< kTruncate: TC=1 answers
  std::uint64_t policy_routed = 0;       ///< kRoutePool to a non-default pool
  /// Policy verdicts keyed into the PR-4 failure taxonomy: refusals count
  /// as kRcode, truncations as kTruncated, silent drops as kCancelled (the
  /// engine deliberately tore the query down; the client sees a timeout).
  util::ErrorCounters policy_errors;
  /// Per-rule hit counters in chain order (`doxperf --policy-csv`).
  std::vector<policy::RuleStats> policy_rules;

  // Link-level path pressure (net::Link totals for the world's fabric;
  // zero when no link models are configured).
  std::uint64_t link_packets = 0;      ///< packets that traversed a link
  std::uint64_t link_drops = 0;        ///< tail-drops at full link queues
  std::uint64_t link_burst_losses = 0; ///< Gilbert-Elliott erasures
  std::uint64_t link_queue_peak = 0;   ///< max backlog bytes on any link

  /// Fraction of evaluated queries the chain refused/dropped/truncated.
  double policy_shed_rate() const {
    const std::uint64_t shed =
        policy_dropped + policy_refused + policy_truncated;
    return policy_evaluations == 0
               ? 0.0
               : static_cast<double>(shed) /
                     static_cast<double>(policy_evaluations);
  }

  /// Accumulates `other` into this — the sharded engine's merge. Counters
  /// sum; upstream health rows append (each shard has its own pool);
  /// per-rule policy counters sum elementwise when the chains line up
  /// (identical config per shard) and append otherwise.
  void add(const EngineStats& other);

  /// Fraction of cache-missing queries that coalesced onto an existing
  /// in-flight resolve.
  double coalesce_rate() const {
    const std::uint64_t candidates = misses + coalesced;
    return candidates == 0
               ? 0.0
               : static_cast<double>(coalesced) /
                     static_cast<double>(candidates);
  }
};

class ForwarderEngine {
 public:
  /// Binds the stub listener on `stub_udp`, groups `upstreams` into named
  /// pools (order of first appearance; the first upstream's pool is the
  /// default routing target), compiles the policy chain against those pool
  /// names, and creates upstream transports from `deps` as pools first use
  /// them. Throws std::invalid_argument if the chain references an unknown
  /// pool.
  ForwarderEngine(sim::Simulator& sim, net::UdpStack& stub_udp,
                  const dox::TransportDeps& upstream_deps,
                  std::vector<UpstreamConfig> upstreams, EngineConfig config);

  ForwarderEngine(const ForwarderEngine&) = delete;
  ForwarderEngine& operator=(const ForwarderEngine&) = delete;

  /// Drops upstream connections (keeps tickets/tokens) across all pools.
  void reset_sessions() {
    for (auto& pool : pools_) pool->reset_sessions();
  }

  const EngineConfig& config() const { return config_; }
  std::size_t pool_count() const { return pools_.size(); }
  UpstreamPool& pool(std::size_t index = 0) { return *pools_[index]; }
  const std::vector<std::string>& pool_names() const { return pool_names_; }
  const dns::Cache& cache() const { return cache_; }

  EngineStats stats() const;
  /// The raw-wire cache, or null when wire_cache_capacity is 0 (tests).
  const dns::WireCache* wire_cache() const { return wire_cache_.get(); }
  /// The persistent snapshot tier, or null when snapshot_dir is empty.
  const dns::SnapshotTier* snapshot() const { return snapshot_.get(); }
  /// Entries promoted from the snapshot into L1/L2 at construction.
  std::uint64_t snapshot_warm_loaded() const { return warm_loaded_; }
  /// Client-visible latency samples in ms (arrival -> answer), for
  /// percentile reporting. Cache hits contribute 0.
  const std::vector<double>& latency_samples_ms() const {
    return latency_ms_;
  }
  /// Sustained query rate over the window between first and last query.
  double observed_qps() const;

 private:
  struct Key {
    dns::DnsName name;
    dns::RRType type = dns::RRType::kA;
    bool operator==(const Key&) const = default;
  };
  /// Borrowed key so the steady-state paths never copy a DnsName just to
  /// probe the in-flight table.
  struct KeyView {
    const dns::DnsName& name;
    dns::RRType type;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t mix(const dns::DnsName& name,
                           dns::RRType type) noexcept {
      return std::hash<dns::DnsName>()(name) ^
             (static_cast<std::size_t>(type) * 0x9E3779B97F4A7C15ull);
    }
    std::size_t operator()(const Key& k) const noexcept {
      return mix(k.name, k.type);
    }
    std::size_t operator()(const KeyView& k) const noexcept {
      return mix(k.name, k.type);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const KeyView& a, const Key& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const Key& a, const KeyView& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
  };

  struct Waiter {
    net::Endpoint from;
    std::uint16_t stub_id = 0;
    SimTime arrived = 0;
  };
  struct InFlight {
    std::vector<Waiter> waiters;  ///< empty for a pure background refresh
  };

  void on_stub_query(const net::Endpoint& from,
                     util::Buffer payload);
  /// Burst entry point (batched delivery): consumes every datagram in one
  /// event while staging responses, then flushes them with one batched
  /// send. Per-query behaviour is identical to per-datagram delivery.
  void on_stub_batch(std::span<net::Datagram> batch);
  /// The raw-wire fast path: probe the wire cache before any decode, run
  /// policy over a lazily-parsed question view, and answer by ID/TTL
  /// patching. Returns true when the query was consumed.
  bool try_answer_wire(const net::Endpoint& from,
                       const util::Buffer& payload);
  /// Fills the wire cache from the just-answered scratch response (L1/L2
  /// hit paths) and offers the records to the shared L2.
  void wire_fill(std::span<const std::uint8_t> query,
                 const dns::Question& question);
  /// Ships an encoded response: immediately, or staged onto the batch
  /// flush when inside on_stub_batch.
  void ship(const net::Endpoint& to, util::Buffer wire);
  /// Applies a terminal policy verdict (drop/refuse/truncate). Returns true
  /// when the query was consumed and must not proceed to resolution.
  bool apply_policy_verdict(const policy::Verdict& verdict,
                            const Waiter& waiter,
                            const dns::Question& question);
  void answer(const Waiter& waiter, const dns::Question& question,
              std::vector<dns::ResourceRecord> records);
  /// Allocation-lean answer straight from a cache hit: records are copied
  /// into the reusable scratch response (capacity is retained across
  /// queries) with TTLs decayed/clamped in place.
  void answer_cached(const Waiter& waiter, const dns::Question& question,
                     const dns::EntryRef& found);
  /// Probes the shared L2 after an L1 miss. On a fresh hit, decodes the
  /// shared buffer into the scratch response, decays TTLs, promotes the
  /// records into the local L1, fills the wire cache, answers, and returns
  /// true. With l2_serve_stale, a stale hit answers with the stale TTL
  /// stamped and triggers exactly one background refresh (no promotion —
  /// the refresh re-promotes fresh data).
  bool try_answer_l2(const Waiter& waiter, const dns::Question& question,
                     std::span<const std::uint8_t> query,
                     std::uint32_t pool_index);
  /// Probes the persistent snapshot tier after an L2 miss; same promotion
  /// and stale-refresh contract as try_answer_l2.
  bool try_answer_snapshot(const Waiter& waiter,
                           const dns::Question& question,
                           std::span<const std::uint8_t> query,
                           std::uint32_t pool_index);
  /// Answers a stale tier hit (records already in the scratch response,
  /// stale TTL stamped) and starts the hierarchy's single background
  /// refresh unless one is already in flight.
  void answer_stale_with_refresh(const Waiter& waiter,
                                 const dns::Question& question,
                                 std::uint32_t pool_index);
  /// Warm-start protocol: promotes every still-fresh snapshot entry into
  /// the L1 (TTLs decayed to their remaining lifetime) and offers it to the
  /// shared L2. Runs once, at construction, when snapshot_dir is set.
  void warm_start_from_snapshot();
  void answer_servfail(const Waiter& waiter, const dns::Question& question);
  /// Stamps header flags on the scratch response and ships it as one pooled
  /// buffer. `tc` sets the truncation bit (policy kTruncate).
  void send_response(const Waiter& waiter, const dns::Question& question,
                     dns::RCode rcode, bool tc = false);
  /// Starts an upstream resolve for `key` on pool `pool_index` (the
  /// coalescing point).
  void start_resolve(const Key& key, const dns::Question& question,
                     std::uint32_t pool_index);
  void on_upstream_result(const Key& key, const dns::Question& question,
                          dox::QueryResult result);
  /// Caches a successful result and fans it out (or stale/SERVFAIL on
  /// failure) to `waiters`.
  void deliver(std::vector<Waiter> waiters, const dns::Question& question,
               dox::QueryResult result);
  std::vector<dns::ResourceRecord> clamp_ttls(
      std::vector<dns::ResourceRecord> records) const;

  sim::Simulator& sim_;
  EngineConfig config_;
  std::unique_ptr<net::UdpSocket> listener_;
  /// Named upstream pools, grouped from the upstream configs (index 0 is
  /// the default routing target). Names in `pool_names_` align by index.
  std::vector<std::unique_ptr<UpstreamPool>> pools_;
  std::vector<std::string> pool_names_;
  /// Compiled policy chain; empty means every query is allowed.
  policy::RuleChain chain_;
  dns::Cache cache_;
  /// Raw-wire cache ahead of the decode step; null when disabled.
  std::unique_ptr<dns::WireCache> wire_cache_;
  /// Persistent snapshot tier; null when snapshot_dir is empty.
  std::unique_ptr<dns::SnapshotTier> snapshot_;
  std::unordered_map<Key, InFlight, KeyHash, KeyEq> inflight_;
  /// Reusable decode/encode scratch: the cached-answer hot path re-decodes
  /// into and re-encodes from these, so their string/vector storage reaches
  /// a high-water mark and steady-state queries allocate nothing.
  dns::Message scratch_query_;
  dns::Message scratch_response_;
  /// Lazily-parsed question view for wire-cache hits (policy + stale
  /// refresh); storage reused across queries.
  dns::Question scratch_wire_question_;
  /// True while on_stub_batch is draining a burst: responses stage onto
  /// `response_flush_` instead of going out one send at a time.
  bool batching_ = false;
  std::vector<net::OutboundDatagram> response_flush_;

  std::uint64_t queries_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t stale_hits_ = 0;
  std::uint64_t wire_hits_ = 0;
  std::uint64_t wire_lookups_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t l2_lookups_ = 0;
  std::uint64_t snapshot_hits_ = 0;
  std::uint64_t snapshot_lookups_ = 0;
  std::uint64_t warm_loaded_ = 0;
  std::uint64_t upstream_resolves_ = 0;
  std::uint64_t stale_refreshes_ = 0;
  std::uint64_t servfails_sent_ = 0;
  std::uint64_t policy_dropped_ = 0;
  std::uint64_t policy_refused_ = 0;
  std::uint64_t policy_truncated_ = 0;
  std::uint64_t policy_routed_ = 0;
  util::ErrorCounters policy_errors_;
  std::vector<double> latency_ms_;
  SimTime first_query_at_ = -1;
  SimTime last_query_at_ = -1;
};

}  // namespace doxlab::engine
