// The sharded engine coordinator: one scenario spread across all cores.
//
// `run_sharded` generates ONE global arrival schedule from the seed (the
// same Poisson/Zipf process LoadGenerator uses), assigns every simulated
// client a source address, hashes sources onto shards (splitmix64 — see
// engine/shard.h), and builds one EngineShard world per shard. The offered
// load is therefore *identical for every shard count*: changing --shards
// only repartitions the same arrivals.
//
// Execution is epoch-barriered on a util::ThreadPool:
//
//   epoch k:  every shard runs its simulator to k * epoch   (parallel)
//   barrier:  SharedPacketCache::sweep merges the shards' deferred
//             L2 inserts and reaps expired entries            (serial)
//
// Between barriers the L2 table is read-only and lookups lock it *shared*
// (readers never exclude each other; only the barrier-time sweep locks
// exclusively), so the try-locks always succeed and every per-shard event
// stream is a pure
// function of (seed, shard index, epoch state) — bit-identical run to run
// regardless of how the OS schedules the worker threads. That is the
// determinism contract the engine_shards ctests pin via the simulator's
// event-stream digests.
//
// Scaling is reported two ways, because a CI container may have a single
// core: `wall_ms` is real elapsed time, while `critical_path_ms` charges
// each epoch its *slowest shard* plus the serial sweep — the wall time an
// N-core machine would see. bench/engine_scale gates on the critical-path
// metric so the near-linear-scaling check is hardware-independent.
#pragma once

#include <vector>

#include "engine/shard.h"

namespace doxlab::engine {

/// Per-shard outcome. Everything except `busy_ms` is deterministic for a
/// fixed (seed, shard count) — busy_ms is measured wall time and is kept
/// out of the pinned CSV columns.
struct ShardOutcome {
  std::uint32_t index = 0;
  EngineStats engine;
  LoadReport load;
  std::uint64_t arrivals = 0;      ///< schedule entries assigned here
  std::uint64_t events = 0;        ///< simulator events executed
  std::uint64_t stream_digest = 0; ///< sim event-stream fingerprint
  /// Commutative per-query outcome fingerprint (see
  /// EngineShard::outcome_digest): batching-invariant where the event
  /// stream digest is not.
  std::uint64_t outcome_digest = 0;
  double busy_ms = 0.0;            ///< cpu time across all epochs
};

struct ShardedResult {
  std::vector<ShardOutcome> shards;
  /// Per-shard EngineStats merged via EngineStats::add, in shard order.
  EngineStats engine;
  /// Per-shard load reports summed; latencies concatenated in shard order.
  LoadReport load;
  dns::SharedPacketCache::Stats l2;
  std::uint64_t epochs = 0;
  std::uint64_t total_arrivals = 0;
  /// Per-shard digests folded in shard order (FNV-style) — the one number
  /// the determinism test compares across runs.
  std::uint64_t merged_digest = 0;
  /// Per-shard outcome digests SUMMED (commutative), so the merged value is
  /// invariant to shard count and batching — the batch-determinism test's
  /// cross-setting comparator.
  std::uint64_t outcome_digest = 0;
  double wall_ms = 0.0;           ///< real elapsed time (this machine)
  double critical_path_ms = 0.0;  ///< sum over epochs of slowest shard
  double sweep_ms = 0.0;          ///< serial L2 sweep time (inside critical)

  /// Queries the engines processed per critical-path second — the
  /// hardware-independent scaling metric bench/engine_scale gates on.
  double effective_qps() const {
    return critical_path_ms <= 0.0
               ? 0.0
               : static_cast<double>(engine.queries) /
                     (critical_path_ms / 1000.0);
  }
  double wall_qps() const {
    return wall_ms <= 0.0 ? 0.0
                          : static_cast<double>(engine.queries) /
                                (wall_ms / 1000.0);
  }
};

/// Builds the schedule and the shard worlds, runs the epoch loop to
/// completion (duration + client timeout + settle slack), and returns the
/// merged result.
ShardedResult run_sharded(const ShardedConfig& config);

}  // namespace doxlab::engine
