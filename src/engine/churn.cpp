#include "engine/churn.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "net/network.h"
#include "resolver/resolver.h"
#include "stats/stats.h"
#include "tcp/tcp.h"

namespace doxlab::engine {

std::string_view churn_action_name(ChurnAction action) {
  switch (action) {
    case ChurnAction::kOutage:
      return "outage";
    case ChurnAction::kRecover:
      return "recover";
    case ChurnAction::kWithdraw:
      return "withdraw";
    case ChurnAction::kAnnounce:
      return "announce";
  }
  return "unknown";
}

namespace {

/// Per-bucket accumulator; percentiles are summarised once at the end.
struct BucketAcc {
  std::uint64_t answered = 0;
  std::uint64_t servfails = 0;
  std::uint64_t timeouts = 0;
  std::vector<double> latency_ms;
};

using BucketMap = std::map<std::int64_t, BucketAcc>;

/// A stats snapshot request: copy the engine's counters at `at`.
struct StatProbe {
  SimTime at = 0;
  EngineStats* out = nullptr;
};

void merge_load(LoadReport& into, const LoadReport& from) {
  into.sent += from.sent;
  into.answered += from.answered;
  into.servfails += from.servfails;
  into.timeouts += from.timeouts;
  into.shed += from.shed;
  into.latency_ms.insert(into.latency_ms.end(), from.latency_ms.begin(),
                         from.latency_ms.end());
}

/// Builds one world (the run_scenario topology: engine host + pinned-RTT
/// upstream resolvers), applies/schedules the segment's churn events, runs
/// the arrival window plus settle slack, and folds the outcome into the
/// campaign totals. `clock_start` > 0 fast-forwards the fresh simulator
/// before anything is constructed, so a restarted engine's warm start and
/// TTL arithmetic see the true wall-clock instant — not time zero.
void run_segment(const ChurnConfig& config, SimTime clock_start,
                 SimTime arrival_duration,
                 const std::vector<ChurnEvent>& events,
                 const std::vector<StatProbe>& probes, BucketMap& buckets,
                 ChurnResult& result) {
  sim::Simulator sim;
  if (clock_start > 0) sim.run_until(clock_start);

  net::Network network(sim, Rng(config.seed));
  network.set_loss_rate(0.0);
  net::Host& client_host = network.add_host(
      "engine-host", net::IpAddress::from_octets(10, 1, 0, 1),
      {50.11, 8.68}, net::Continent::kEurope);
  net::UdpStack udp(client_host);
  tcp::TcpStack tcp(client_host);
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;

  std::vector<std::unique_ptr<resolver::DoxResolver>> resolvers;
  std::vector<UpstreamConfig> upstreams;
  for (std::size_t i = 0; i < config.upstream_one_way.size(); ++i) {
    resolver::ResolverProfile profile;
    profile.name = "upstream-" + std::to_string(i);
    profile.address = net::IpAddress::from_octets(
        10, 9, 0, static_cast<std::uint8_t>(i + 1));
    profile.location = {48.86, 2.35};
    profile.secret = 0xE0 + i;
    profile.drop_probability = 0.0;
    resolvers.push_back(std::make_unique<resolver::DoxResolver>(
        network, profile, Rng(config.seed + 100 + i)));
    network.set_path_override(client_host.address(), profile.address,
                              config.upstream_one_way[i]);

    UpstreamConfig upstream;
    upstream.name = profile.name;
    upstream.address = profile.address;
    upstream.protocols = config.protocols;
    upstreams.push_back(std::move(upstream));
  }

  dox::TransportDeps deps;
  deps.sim = &sim;
  deps.udp = &udp;
  deps.tcp = &tcp;
  deps.tickets = &tickets;
  deps.doq_cache = &doq_cache;

  LoadConfig load = config.load;
  load.duration = arrival_duration;
  load.target = net::Endpoint{client_host.address(),
                              config.engine.listen_port};
  const SimTime bucket = std::max<SimTime>(1, config.bucket);
  load.sample_hook = [&buckets, bucket](SimTime sent_at,
                                        QueryOutcome outcome,
                                        double latency_ms) {
    BucketAcc& acc = buckets[sent_at / bucket];
    switch (outcome) {
      case QueryOutcome::kAnswered:
        ++acc.answered;
        acc.latency_ms.push_back(latency_ms);
        break;
      case QueryOutcome::kServfail:
        ++acc.servfails;
        break;
      case QueryOutcome::kTimeout:
        ++acc.timeouts;
        break;
    }
  };

  ForwarderEngine engine(sim, udp, deps, std::move(upstreams),
                         config.engine);

  for (const ChurnEvent& event : events) {
    if (event.upstream >= resolvers.size()) continue;
    auto apply = [&resolvers, &engine, &result, event] {
      ++result.events_executed;
      switch (event.action) {
        case ChurnAction::kOutage:
          resolvers[event.upstream]->host().set_up(false);
          break;
        case ChurnAction::kRecover:
          resolvers[event.upstream]->host().set_up(true);
          break;
        case ChurnAction::kWithdraw:
          engine.pool(0).set_enabled(event.upstream, false);
          break;
        case ChurnAction::kAnnounce:
          engine.pool(0).set_enabled(event.upstream, true);
          break;
      }
    };
    if (event.at <= sim.now()) {
      apply();
    } else {
      sim.at(event.at, apply);
    }
  }

  for (const StatProbe& probe : probes) {
    if (probe.out == nullptr) continue;
    if (probe.at <= sim.now()) {
      *probe.out = engine.stats();
    } else {
      sim.at(probe.at, [&engine, out = probe.out] { *out = engine.stats(); });
    }
  }

  LoadGenerator generator(sim, udp, load);

  // Arrival window plus the settle slack run_scenario allows: a restart is
  // modelled as a drain — arrivals stop, in-flight queries finish against
  // the old engine, and only then is the world torn down.
  sim.run_until(sim.now() + arrival_duration + load.client_timeout +
                15 * kSecond);

  result.engine.add(engine.stats());
  merge_load(result.load, generator.report());
  result.warm_loaded += engine.snapshot_warm_loaded();
}

}  // namespace

ChurnResult run_churn(const ChurnConfig& config) {
  ChurnResult result;
  result.events = config.events;
  BucketMap buckets;

  const SimTime total = config.load.duration;
  const SimTime restart =
      (config.restart_at > 0 && config.restart_at < total)
          ? config.restart_at
          : 0;

  if (restart == 0) {
    run_segment(config, 0, total, config.events, {}, buckets, result);
  } else {
    std::vector<ChurnEvent> before, after;
    for (const ChurnEvent& event : config.events) {
      (event.at < restart ? before : after).push_back(event);
    }
    const SimTime window = std::max<SimTime>(1, config.epoch_window);
    std::vector<StatProbe> pre_probes = {
        {std::max<SimTime>(0, restart - window), &result.pre_window_start},
        {restart, &result.pre_restart}};
    run_segment(config, 0, restart, before, pre_probes, buckets, result);
    std::vector<StatProbe> post_probes = {
        {restart + window, &result.post_first_epoch}};
    run_segment(config, restart, total - restart, after, post_probes,
                buckets, result);
  }

  // Summarise the buckets in time order; empty buckets inside the horizon
  // appear explicitly (an outage that answers nothing should read as a
  // zero-rate bucket, not a gap).
  const SimTime bucket = std::max<SimTime>(1, config.bucket);
  const std::int64_t last = buckets.empty() ? -1 : buckets.rbegin()->first;
  for (std::int64_t index = 0; index <= last; ++index) {
    ChurnBucket out;
    out.start = index * bucket;
    auto it = buckets.find(index);
    if (it != buckets.end()) {
      BucketAcc& acc = it->second;
      out.answered = acc.answered;
      out.servfails = acc.servfails;
      out.timeouts = acc.timeouts;
      out.sent = acc.answered + acc.servfails + acc.timeouts;
      if (!acc.latency_ms.empty()) {
        const stats::Summary summary =
            stats::Summary::of(std::move(acc.latency_ms));
        out.p50_ms = summary.median;
        out.p99_ms = summary.p99;
      }
    }
    result.series.push_back(out);
  }
  return result;
}

std::string churn_csv(const ChurnResult& result) {
  std::string csv =
      "bucket_s,sent,answered,servfails,timeouts,answer_rate,p50_ms,"
      "p99_ms\n";
  char line[160];
  for (const ChurnBucket& bucket : result.series) {
    std::snprintf(line, sizeof(line),
                  "%.3f,%llu,%llu,%llu,%llu,%.6f,%.3f,%.3f\n",
                  static_cast<double>(bucket.start) / kSecond,
                  static_cast<unsigned long long>(bucket.sent),
                  static_cast<unsigned long long>(bucket.answered),
                  static_cast<unsigned long long>(bucket.servfails),
                  static_cast<unsigned long long>(bucket.timeouts),
                  bucket.answer_rate(), bucket.p50_ms, bucket.p99_ms);
    csv += line;
  }
  return csv;
}

}  // namespace doxlab::engine
