#include "engine/shard.h"

#include <algorithm>
#include <bit>
#include <string>

#include "dns/message.h"
#include "util/rng.h"

namespace doxlab::engine {

namespace {

/// Seed-derivation lanes: each subsystem's stream is splitmix64(seed, lane)
/// so adding draws in one place never perturbs another. Lanes encode the
/// shard index but never the shard count — a shard's world is identical no
/// matter how many siblings it has.
constexpr std::uint64_t kNetworkLane = 0x5A000000ull;
constexpr std::uint64_t kResolverLane = 0x5B000000ull;

}  // namespace

net::IpAddress client_source(const ShardedConfig& config,
                             std::uint32_t index) {
  return net::IpAddress(
      config.client_base.value() +
      static_cast<std::uint32_t>(splitmix64(config.seed, index) %
                                 config.client_span));
}

std::uint32_t shard_of(const ShardedConfig& config, net::IpAddress source) {
  if (config.shards <= 1) return 0;
  return static_cast<std::uint32_t>(
      splitmix64(config.seed ^ 0xC11E47ull, source.value()) % config.shards);
}

EngineShard::EngineShard(const ShardedConfig& config, std::uint32_t index,
                         std::span<const Arrival> arrivals,
                         dns::SharedPacketCache* l2)
    : config_(config), index_(index) {
  network_ = std::make_unique<net::Network>(
      sim_, Rng(splitmix64(config.seed, kNetworkLane + index)));
  network_->set_loss_rate(0.0);
  network_->set_batch_window(config.batch_window);

  // The shard's host carries both the engine listener and the swarm socket
  // (mirroring run_scenario, where generator and engine share one host).
  host_ = &network_->add_host(
      "shard-" + std::to_string(index),
      net::IpAddress::from_octets(10, 1, 0,
                                  static_cast<std::uint8_t>(index + 1)),
      {50.11, 8.68}, net::Continent::kEurope);
  udp_ = std::make_unique<net::UdpStack>(*host_);
  tcp_ = std::make_unique<tcp::TcpStack>(*host_);
  if (config.bottleneck) {
    network_->set_host_ingress_link(host_->address(),
                                    network_->add_link(*config.bottleneck));
  }

  // Client sources live in their own prefix; answers to spoofed sources
  // must route back to this host's swarm socket. Cover the whole source
  // range [base, base + span - 1] with the narrowest containing prefix —
  // a hardcoded length would blackhole replies whenever client_span
  // outgrows it. Exact host addresses win over prefix routes in
  // Network::route_host, so a wide cover cannot hijack engine or upstream
  // traffic.
  const std::uint32_t base = config.client_base.value();
  const std::uint64_t last_wide =
      std::uint64_t{base} + std::max<std::uint32_t>(1, config.client_span) - 1;
  const auto last = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(last_wide, 0xFFFFFFFFull));
  network_->add_prefix_route(config.client_base,
                             32 - std::bit_width(base ^ last),
                             host_->address());

  std::vector<UpstreamConfig> upstreams;
  for (std::size_t i = 0; i < config.upstream_one_way.size(); ++i) {
    resolver::ResolverProfile profile;
    profile.name = "upstream-" + std::to_string(i);
    profile.address = net::IpAddress::from_octets(
        10, 9, 0, static_cast<std::uint8_t>(i + 1));
    profile.location = {48.86, 2.35};
    profile.secret = 0xE0 + i;
    profile.drop_probability = 0.0;
    resolvers_.push_back(std::make_unique<resolver::DoxResolver>(
        *network_, profile,
        Rng(splitmix64(config.seed, kResolverLane + (index << 8) + i))));
    network_->set_path_override(host_->address(), profile.address,
                                config.upstream_one_way[i]);

    UpstreamConfig upstream;
    upstream.name = profile.name;
    upstream.address = profile.address;
    upstream.protocols = config.protocols;
    upstreams.push_back(std::move(upstream));
  }

  dox::TransportDeps deps;
  deps.sim = &sim_;
  deps.udp = udp_.get();
  deps.tcp = tcp_.get();
  deps.tickets = &tickets_;
  deps.doq_cache = &doq_cache_;

  EngineConfig engine_config = config.engine;
  engine_config.l2 = l2;
  engine_config.shard_index = index;
  // Per-shard chain instances can't share limiter state. Address-keyed
  // (/32) budgets are already shard-local — the source hash sends one
  // address's traffic to one shard — and coarser budgets are sliced
  // exactly across shards (see policy::scale_rate_limits).
  engine_config.policy = policy::scale_rate_limits(
      std::move(engine_config.policy), config.shards, index);
  engine_ = std::make_unique<ForwarderEngine>(sim_, *udp_, deps,
                                              std::move(upstreams),
                                              engine_config);
  target_ = net::Endpoint{host_->address(), engine_config.listen_port};

  names_.reserve(config.names);
  for (std::size_t i = 0; i < config.names; ++i) {
    names_.push_back(
        dns::DnsName::parse("name" + std::to_string(i) + ".load.example"));
  }

  swarm_ = udp_->bind_ephemeral();
  swarm_->on_datagram([this](const net::Endpoint&, util::Buffer payload) {
    on_response(std::move(payload));
  });
  // Batched mode: one event drains a whole burst of answers through the
  // same per-response logic (timer cancels amortize into one pass).
  swarm_->on_batch([this](std::span<net::Datagram> batch) {
    for (net::Datagram& datagram : batch) {
      on_response(std::move(datagram.payload));
    }
  });

  arrivals_scheduled_ = arrivals.size();
  for (const Arrival& arrival : arrivals) {
    sim_.at(arrival.at, [this, client = arrival.client,
                         name = arrival.name] { send_query(client, name); });
  }
}

void EngineShard::run_until(SimTime deadline) { sim_.run_until(deadline); }

void EngineShard::book_outcome(SimTime sent_at, std::uint64_t outcome) {
  // Commutative sum — see outcome_digest() for the invariance contract.
  outcome_digest_ +=
      splitmix64(config_.seed ^ static_cast<std::uint64_t>(sent_at), outcome);
}

void EngineShard::send_query(std::uint32_t client, std::uint32_t name_index) {
  // Transaction ids are a shard-global ring: with a 16-bit space and
  // short-lived queries, a still-pending id is skipped (deterministically)
  // rather than clobbered.
  std::uint16_t id = next_id_;
  while (pending_.find(id) != pending_.end()) {
    if (++id == 0) id = 1;
    if (id == next_id_) {
      // 65535 in flight: shed this arrival. Counted so the load report
      // reconciles — sent + shed == arrivals scheduled.
      ++report_.shed;
      book_outcome(sim_.now(), kOutcomeShed);
      return;
    }
  }
  next_id_ = static_cast<std::uint16_t>(id + 1);
  if (next_id_ == 0) next_id_ = 1;

  dns::Message query = dns::make_query(id, names_[name_index],
                                       dns::RRType::kA);
  PendingQuery pending;
  pending.sent_at = sim_.now();
  pending.timeout = sim_.schedule(config_.client_timeout, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    book_outcome(it->second.sent_at, kOutcomeTimeout);
    pending_.erase(it);
    ++report_.timeouts;
  });
  pending_[id] = std::move(pending);

  ++report_.sent;
  swarm_->send_to_from(target_, client_source(config_, client),
                       util::Buffer::copy_of(query.encode()));
}

void EngineShard::on_response(util::Buffer payload) {
  auto response = dns::Message::decode(payload);
  if (!response || !response->qr) return;
  auto it = pending_.find(response->id);
  if (it == pending_.end()) return;  // late answer after timeout
  it->second.timeout.cancel();
  if (response->rcode == dns::RCode::kServFail) {
    ++report_.servfails;
    book_outcome(it->second.sent_at, kOutcomeServfail);
  } else {
    ++report_.answered;
    report_.latency_ms.push_back(to_ms(sim_.now() - it->second.sent_at));
    book_outcome(it->second.sent_at, kOutcomeAnswered);
  }
  pending_.erase(it);
}

}  // namespace doxlab::engine
