// Multi-client stub load generator for the forwarder engine.
//
// Simulates thousands of stub clients on one host: query arrivals form a
// Poisson process at an aggregate rate, each arrival is issued by a
// uniformly-chosen client against a Zipf-distributed name population (web
// DNS traffic is heavily skewed towards a few hot names — the property that
// makes coalescing and caching pay). Every query's client-visible latency
// is recorded, along with SERVFAIL and timeout counts, so a run reports
// sustained qps and p50/p95/p99 through src/stats.
//
// On top of the legitimate load, the generator can run *attack mixes* — the
// abuse-traffic families a production forwarder's policy pipeline exists to
// shed: random-subdomain cache-busting floods, NXDOMAIN water torture, and
// spoofed-source amplification (TXT queries stamped with victim addresses
// via UdpSocket::send_to_from). Each attack draws from its own
// splitmix64-derived Rng stream, so enabling an attack never perturbs the
// legitimate arrival schedule — the no-attack and under-attack runs stay
// sample-for-sample comparable.
//
// Deterministic: all randomness comes from the seeded Rng, and arrivals are
// pre-scheduled on the simulator.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/udp.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "util/rng.h"

namespace doxlab::engine {

/// Abuse-traffic families (the scenario knob behind `doxperf abuse`).
enum class AttackKind : std::uint8_t {
  /// Cache-busting flood: a fresh random label under `zone` per query, so
  /// every query misses the cache and reaches the upstream path.
  kRandomSubdomain,
  /// Water torture: random labels under rotating subzones of `zone` — the
  /// classic NXDOMAIN flood shape against one victim domain.
  kWaterTorture,
  /// Reflection/amplification: small TXT queries whose spoofed sources are
  /// the victim's addresses, so answers (the amplified payload) backscatter
  /// towards the victim instead of the bot.
  kAmplification,
};

std::string_view attack_kind_name(AttackKind kind);

struct AttackConfig {
  AttackKind kind = AttackKind::kRandomSubdomain;
  /// Poisson arrival rate of attack queries.
  double qps = 1000.0;
  /// Attack window, offset from generator construction.
  SimTime start = 0;
  SimTime duration = 10 * kSecond;
  /// Zone the attack queries live under (one policy suffix rule covers the
  /// whole family).
  std::string zone = "flood.example";
  /// Spoofed sources: base + [0, source_count). For floods this is the
  /// botnet's subnet; for amplification it is the victim's prefix.
  net::IpAddress source_base;
  std::uint32_t source_count = 256;
  /// kAmplification: requested TXT payload bytes (the resolver sizes the
  /// answer from a leading "txt<bytes>" label).
  std::size_t amp_payload = 1200;
};

/// What came back to the attack socket. With spoofed sources outside the
/// generator host's prefix these counters stay at `sent` only — the
/// backscatter lands on (or is dropped towards) the victim.
struct AttackReport {
  AttackKind kind = AttackKind::kRandomSubdomain;
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;   ///< non-error responses
  std::uint64_t refused = 0;    ///< REFUSED (the policy shed)
  std::uint64_t truncated = 0;  ///< TC=1 (policy slow-pathed the abuser)
};

/// Terminal fate of one legitimate query (churn time-series hook).
enum class QueryOutcome : std::uint8_t { kAnswered, kServfail, kTimeout };

struct LoadConfig {
  /// Simulated stub clients (each gets its own ephemeral socket).
  std::size_t clients = 1000;
  /// Aggregate Poisson arrival rate, queries per second.
  double qps = 2000.0;
  /// Arrival window; queries issued in [start, start + duration).
  SimTime duration = 30 * kSecond;
  /// Distinct query names ("nameN.load.example").
  std::size_t names = 500;
  /// Zipf popularity exponent (1.0 ~ web-like skew).
  double zipf_exponent = 1.0;
  /// A client gives up on an unanswered query after this long.
  SimTime client_timeout = 8 * kSecond;
  std::uint64_t seed = 7;
  /// Where queries go (the engine's stub endpoint).
  net::Endpoint target;
  /// Per-client source addressing: with `client_span` > 0, client i sends
  /// from `client_base + splitmix64(seed, i) % client_span` — assignment is
  /// deterministic and independent of the arrival stream. The network needs
  /// a prefix route for that subnet pointing at the generator's host so
  /// answers find their way back. 0 keeps the host's own address (the
  /// pre-policy behaviour).
  net::IpAddress client_base;
  std::uint32_t client_span = 0;
  /// Abuse mixes layered on top of the legitimate load.
  std::vector<AttackConfig> attacks;
  /// Called once per legitimate query at its terminal outcome, keyed by the
  /// *send* time so bucketed series line up with the event that was live
  /// when the query went out. `latency_ms` is meaningful for kAnswered
  /// only. Null (the default) changes nothing.
  std::function<void(SimTime sent_at, QueryOutcome outcome,
                     double latency_ms)>
      sample_hook;
};

struct LoadReport {
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;   ///< non-SERVFAIL responses
  std::uint64_t servfails = 0;  ///< client-visible SERVFAILs
  std::uint64_t timeouts = 0;   ///< gave up waiting
  /// Arrivals dropped before sending (the sharded swarm's 16-bit
  /// transaction-id space was exhausted); sent + shed == arrivals offered.
  std::uint64_t shed = 0;
  std::vector<double> latency_ms;  ///< answered queries only

  /// Every *sent* query reached a terminal outcome (shed never went out).
  bool complete() const { return answered + servfails + timeouts == sent; }
  stats::Summary latency_summary() const {
    return stats::Summary::of(latency_ms);
  }
};

class LoadGenerator {
 public:
  /// Creates the client sockets and pre-schedules every arrival on `sim`.
  /// Run the simulator afterwards; the report is complete once every query
  /// was answered or timed out (config.duration + client_timeout suffices).
  LoadGenerator(sim::Simulator& sim, net::UdpStack& udp, LoadConfig config);

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  const LoadReport& report() const { return report_; }
  const LoadConfig& config() const { return config_; }
  /// Per-attack counters, in `config.attacks` order.
  std::vector<AttackReport> attack_reports() const;
  /// All attacks summed (kind is the first attack's, meaningless mixed).
  AttackReport attack_total() const;
  /// The source address client `index` sends from.
  net::IpAddress client_source(std::size_t index) const {
    return clients_[index]->source;
  }

 private:
  struct PendingQuery {
    SimTime sent_at = 0;
    sim::Timer timeout;
  };
  struct Client {
    std::unique_ptr<net::UdpSocket> socket;
    net::IpAddress source;  ///< assigned source (unset: host address)
    std::uint16_t next_id = 1;
    std::unordered_map<std::uint16_t, PendingQuery> pending;
  };
  struct AttackState {
    AttackConfig config;
    Rng rng;  ///< private stream: splitmix64(seed, 2^32 + attack index)
    std::unique_ptr<net::UdpSocket> socket;
    AttackReport report;
  };

  void send_query(std::size_t client_index);
  void send_attack(std::size_t attack_index);
  /// Samples a name index from the Zipf popularity distribution.
  std::size_t sample_name();

  sim::Simulator& sim_;
  LoadConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<AttackState>> attacks_;
  /// Cumulative Zipf weights for binary-search sampling.
  std::vector<double> name_cdf_;
  std::vector<sim::Timer> arrivals_;
  LoadReport report_;
};

}  // namespace doxlab::engine
