// Multi-client stub load generator for the forwarder engine.
//
// Simulates thousands of stub clients on one host: query arrivals form a
// Poisson process at an aggregate rate, each arrival is issued by a
// uniformly-chosen client against a Zipf-distributed name population (web
// DNS traffic is heavily skewed towards a few hot names — the property that
// makes coalescing and caching pay). Every query's client-visible latency
// is recorded, along with SERVFAIL and timeout counts, so a run reports
// sustained qps and p50/p95/p99 through src/stats.
//
// Deterministic: all randomness comes from the seeded Rng, and arrivals are
// pre-scheduled on the simulator.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/udp.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "util/rng.h"

namespace doxlab::engine {

struct LoadConfig {
  /// Simulated stub clients (each gets its own ephemeral socket).
  std::size_t clients = 1000;
  /// Aggregate Poisson arrival rate, queries per second.
  double qps = 2000.0;
  /// Arrival window; queries issued in [start, start + duration).
  SimTime duration = 30 * kSecond;
  /// Distinct query names ("nameN.load.example").
  std::size_t names = 500;
  /// Zipf popularity exponent (1.0 ~ web-like skew).
  double zipf_exponent = 1.0;
  /// A client gives up on an unanswered query after this long.
  SimTime client_timeout = 8 * kSecond;
  std::uint64_t seed = 7;
  /// Where queries go (the engine's stub endpoint).
  net::Endpoint target;
};

struct LoadReport {
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;   ///< non-SERVFAIL responses
  std::uint64_t servfails = 0;  ///< client-visible SERVFAILs
  std::uint64_t timeouts = 0;   ///< gave up waiting
  std::vector<double> latency_ms;  ///< answered queries only

  bool complete() const { return answered + servfails + timeouts == sent; }
  stats::Summary latency_summary() const {
    return stats::Summary::of(latency_ms);
  }
};

class LoadGenerator {
 public:
  /// Creates the client sockets and pre-schedules every arrival on `sim`.
  /// Run the simulator afterwards; the report is complete once every query
  /// was answered or timed out (config.duration + client_timeout suffices).
  LoadGenerator(sim::Simulator& sim, net::UdpStack& udp, LoadConfig config);

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  const LoadReport& report() const { return report_; }
  const LoadConfig& config() const { return config_; }

 private:
  struct PendingQuery {
    SimTime sent_at = 0;
    sim::Timer timeout;
  };
  struct Client {
    std::unique_ptr<net::UdpSocket> socket;
    std::uint16_t next_id = 1;
    std::unordered_map<std::uint16_t, PendingQuery> pending;
  };

  void send_query(std::size_t client_index);
  /// Samples a name index from the Zipf popularity distribution.
  std::size_t sample_name();

  sim::Simulator& sim_;
  LoadConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<Client>> clients_;
  /// Cumulative Zipf weights for binary-search sampling.
  std::vector<double> name_cdf_;
  std::vector<sim::Timer> arrivals_;
  LoadReport report_;
};

}  // namespace doxlab::engine
