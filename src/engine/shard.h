// One shard of the sharded forwarder engine: a complete, self-contained
// simulated world (event loop, network, upstream resolvers, ForwarderEngine,
// stub-client swarm) that runs on one thread at a time.
//
// The coordinator (engine/sharded.h) hashes stub clients onto shards by
// source address and hands each shard its slice of one global arrival
// schedule. Everything inside a shard is derived from (seed, shard index)
// only — never from the shard *count* or from wall-clock — so a shard's
// event stream is bit-identical run to run; the simulator's
// event_stream_digest() pins exactly that in the determinism tests.
//
// The swarm client differs from engine/load_gen.h's LoadGenerator: instead
// of one ephemeral socket per client (the UDP stack has ~16k ephemeral
// ports; the sharded scenario drives millions of clients), the whole shard
// shares ONE socket and stamps each query with its client's source address
// via send_to_from. Replies route back through the client prefix and demux
// by DNS transaction id, so per-client state is zero bytes — client count
// scales to millions for free.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dns/packet_cache.h"
#include "dox/transport.h"
#include "engine/engine.h"
#include "engine/load_gen.h"
#include "net/network.h"
#include "resolver/resolver.h"
#include "tcp/tcp.h"

namespace doxlab::engine {

/// One entry of the global arrival schedule: at simulated time `at`, client
/// `client` asks for name index `name`. Generated once by the coordinator
/// from the seed — identical for every shard count.
struct Arrival {
  SimTime at = 0;
  std::uint32_t client = 0;
  std::uint32_t name = 0;
};

/// Workload + world parameters shared by every shard (the coordinator's
/// config; see sharded.h for the fields' one-stop documentation).
struct ShardedConfig {
  std::uint32_t shards = 1;
  std::uint64_t seed = 42;
  /// Simulated stub clients across ALL shards (source-hashed onto shards).
  std::size_t clients = 1'000'000;
  /// Aggregate Poisson arrival rate across all shards, queries per second.
  double qps = 20'000.0;
  SimTime duration = 10 * kSecond;
  std::size_t names = 500;
  double zipf_exponent = 1.0;
  SimTime client_timeout = 8 * kSecond;
  /// Client source addressing (mirrors LoadConfig): client i sends from
  /// `client_base + splitmix64(seed, i) % client_span`. Each shard routes
  /// the narrowest prefix covering the whole span back to its swarm
  /// socket, so any span fits.
  net::IpAddress client_base = net::IpAddress::from_octets(10, 50, 0, 0);
  std::uint32_t client_span = 1 << 16;
  /// Per-shard engine template; `l2` and `shard_index` are stamped per
  /// shard, and rate-limit budgets are sliced across shards
  /// (policy::scale_rate_limits — /32-keyed rules keep the full budget).
  EngineConfig engine;
  std::vector<SimTime> upstream_one_way = {from_ms(25), from_ms(40),
                                           from_ms(60)};
  std::vector<dox::DnsProtocol> protocols = {dox::DnsProtocol::kDoQ,
                                             dox::DnsProtocol::kDoT,
                                             dox::DnsProtocol::kDoUdp};
  /// Shared L2 packet cache (0 capacity disables it).
  std::size_t l2_capacity = 1 << 16;
  /// Epoch length: shards run independently for one epoch, then barrier at
  /// its end for the L2 sweep.
  SimTime epoch = 100 * kMillisecond;
  /// Batched-delivery aggregation window (`--batch-us`; 0 = per-datagram
  /// events). Applied to each shard's fabric: UDP datagrams landing on one
  /// host within the window coalesce into a single PacketBatch event, and
  /// the engine answers the burst with one batched flush. Changes event
  /// count/order (and the stream digest) but never per-query outcomes —
  /// that is what `outcome_digest` pins.
  SimTime batch_window = 0;
  /// Worker threads driving the shards (<= 0: one per hardware thread).
  int threads = 0;
  /// Optional finite-rate bottleneck link on each shard host's ingress
  /// (all stub queries and upstream answers drain through it). Exercises
  /// the link queues under engine load — the TSan CI stage runs one; the
  /// default (unset) keeps the pinned digests' event streams.
  std::optional<net::LinkConfig> bottleneck;
};

/// The source address client `index` sends from (shared by the coordinator
/// for shard assignment and by the shard for query stamping).
net::IpAddress client_source(const ShardedConfig& config, std::uint32_t index);

/// Which shard owns `source`: splitmix64 over the address, mod shard count.
std::uint32_t shard_of(const ShardedConfig& config, net::IpAddress source);

class EngineShard {
 public:
  /// Builds the shard's world and pre-schedules its `arrivals` slice.
  /// `l2` may be null (no shared cache). The ShardedConfig must outlive the
  /// shard; arrivals are copied into the event queue.
  EngineShard(const ShardedConfig& config, std::uint32_t index,
              std::span<const Arrival> arrivals, dns::SharedPacketCache* l2);

  EngineShard(const EngineShard&) = delete;
  EngineShard& operator=(const EngineShard&) = delete;

  /// Advances this shard's simulated clock to `deadline` (one epoch's
  /// worth). Must not run concurrently with itself; the coordinator calls
  /// it from at most one pool worker at a time.
  void run_until(SimTime deadline);

  std::uint32_t index() const { return index_; }
  EngineStats engine_stats() const {
    EngineStats stats = engine_->stats();
    const net::LinkStats links = network_->link_totals();
    stats.link_packets = links.packets;
    stats.link_drops = links.tail_drops;
    stats.link_burst_losses = links.burst_losses;
    stats.link_queue_peak = links.queued_bytes_max;
    return stats;
  }
  const LoadReport& report() const { return report_; }
  std::uint64_t events_executed() const { return sim_.events_executed(); }
  /// True once this shard is past the arrival window with no client query
  /// awaiting an answer: everything left in the event queue is engine
  /// housekeeping (idle timers, keep-alives). The coordinator then collapses
  /// the remaining settle window into a single epoch — the same events
  /// execute in the same order, it just stops barriering for a swarm that
  /// has nothing more to say. Pure function of sim state, so deterministic.
  bool drained() const {
    return sim_.now() >= config_.duration && pending_.empty();
  }
  std::uint64_t stream_digest() const { return sim_.event_stream_digest(); }
  /// Commutative per-query outcome fingerprint: every terminal outcome
  /// (answered / servfail / timeout / shed) folds
  /// splitmix64(seed ^ sent_at, outcome class) into a SUM, so the digest is
  /// invariant to answer ordering, shard assignment, and delivery batching
  /// — it changes iff some query's outcome (or send time) changes. The
  /// batch-determinism ctest compares it across --batch-us settings, where
  /// the event-stream digest necessarily differs.
  std::uint64_t outcome_digest() const { return outcome_digest_; }
  std::size_t arrivals_scheduled() const { return arrivals_scheduled_; }

 private:
  struct PendingQuery {
    SimTime sent_at = 0;
    sim::Timer timeout;
  };

  enum OutcomeClass : std::uint64_t {
    kOutcomeAnswered = 1,
    kOutcomeServfail = 2,
    kOutcomeTimeout = 3,
    kOutcomeShed = 4,
  };
  void book_outcome(SimTime sent_at, std::uint64_t outcome);

  void send_query(std::uint32_t client, std::uint32_t name_index);
  void on_response(util::Buffer payload);

  const ShardedConfig& config_;
  std::uint32_t index_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  net::Host* host_ = nullptr;
  std::unique_ptr<net::UdpStack> udp_;
  std::unique_ptr<tcp::TcpStack> tcp_;
  tls::TicketStore tickets_;
  dox::DoqSessionCache doq_cache_;
  std::vector<std::unique_ptr<resolver::DoxResolver>> resolvers_;
  std::unique_ptr<ForwarderEngine> engine_;

  /// Swarm client state: one socket for every client on this shard.
  std::unique_ptr<net::UdpSocket> swarm_;
  net::Endpoint target_;
  std::vector<dns::DnsName> names_;  ///< pre-parsed query names
  std::uint16_t next_id_ = 1;
  std::unordered_map<std::uint16_t, PendingQuery> pending_;
  std::size_t arrivals_scheduled_ = 0;
  std::uint64_t outcome_digest_ = 0;
  LoadReport report_;
};

}  // namespace doxlab::engine
