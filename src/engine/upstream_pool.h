// Upstream resolver pool: health tracking, retry-with-timeout, and
// cross-protocol fallback.
//
// One `UpstreamConfig` names a resolver reachable over an ordered list of
// DoX protocols — the fallback chain (e.g. DoQ -> DoT -> DoUDP). The pool
// keeps one lazily-created `dox::DnsTransport` per (upstream, protocol) so
// connections, tickets and tokens are reused across queries, exactly like a
// long-running forwarder process.
//
// resolve() walks candidates Happy-Eyeballs-style: each attempt gets
// `attempt_timeout` before the next (protocol, then next upstream) is
// started; the first success wins. Per-upstream health is an EWMA of resolve
// latency plus a consecutive-failure count; an upstream that fails
// `unhealthy_after` times in a row is quarantined and only re-probed after
// `quarantine` elapses, so steady-state traffic routes around a dead primary
// without paying the timeout on every query.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dox/transport.h"
#include "sim/simulator.h"

namespace doxlab::engine {

struct UpstreamConfig {
  std::string name;
  /// Named pool this upstream belongs to. The engine groups upstreams with
  /// the same pool name into one `UpstreamPool`; policy kRoutePool actions
  /// reference these names, compiled to pool indices. Everything in one
  /// pool (the default) behaves exactly like the pre-policy engine.
  std::string pool = "default";
  net::IpAddress address;
  /// Fallback chain, most preferred first. Ports are the protocol defaults.
  std::vector<dox::DnsProtocol> protocols = {dox::DnsProtocol::kDoQ,
                                             dox::DnsProtocol::kDoT,
                                             dox::DnsProtocol::kDoUdp};
  /// Options for every transport towards this upstream (resolver endpoint
  /// is filled in per protocol).
  dox::TransportOptions transport_options;
};

/// Health snapshot of one upstream (stats surface).
struct UpstreamHealth {
  std::string name;
  /// EWMA of successful resolve latency, in milliseconds (0 until the first
  /// success).
  double ewma_latency_ms = 0.0;
  int consecutive_failures = 0;
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;
  bool healthy = true;
  /// Administratively withdrawn (churn campaigns); candidate plans skip it.
  bool admin_enabled = true;
};

struct PoolConfig {
  /// Per-attempt budget before the next candidate is started.
  SimTime attempt_timeout = 2 * kSecond;
  /// Consecutive failures after which an upstream is quarantined.
  int unhealthy_after = 3;
  /// How long a quarantined upstream waits before a live query re-probes it.
  SimTime quarantine = 10 * kSecond;
  /// EWMA smoothing factor (weight of the newest latency sample).
  double ewma_alpha = 0.2;
  /// Give up after this many attempts across the whole pool.
  int max_attempts = 8;
  /// Prefer the upstream with the lowest EWMA latency instead of strict
  /// configuration order (unhealthy upstreams sort last either way).
  bool select_fastest = false;
};

class UpstreamPool {
 public:
  using ResultHandler = std::function<void(dox::QueryResult)>;

  UpstreamPool(sim::Simulator& sim, const dox::TransportDeps& deps,
               std::vector<UpstreamConfig> upstreams, PoolConfig config);

  UpstreamPool(const UpstreamPool&) = delete;
  UpstreamPool& operator=(const UpstreamPool&) = delete;

  /// Resolves `question` against the pool. The handler fires exactly once:
  /// with the first successful attempt, or with a failure once every
  /// candidate is exhausted.
  void resolve(const dns::Question& question, ResultHandler handler);

  /// Drops all upstream connections (keeps tickets/tokens) and resets
  /// quarantine state.
  void reset_sessions();

  /// Administratively withdraws (false) or re-announces (true) one upstream
  /// — the anycast-catchment analogue of a route flap. A withdrawn upstream
  /// never appears in a candidate plan, unlike a quarantined one which is
  /// still appended last as a re-probe target. Re-announcing clears health
  /// state so the first query after the flap is not biased by stale
  /// failures. Out-of-range indices are ignored.
  void set_enabled(std::size_t index, bool enabled);

  std::vector<UpstreamHealth> health() const;
  std::size_t size() const { return upstreams_.size(); }

  /// Total attempts issued towards upstreams (the coalescing ablation
  /// compares this against client queries).
  std::uint64_t attempts_issued() const { return attempts_issued_; }
  /// Attempts beyond the first for a query (fallback pressure).
  std::uint64_t failovers() const { return failovers_; }
  /// resolve() calls that exhausted every candidate.
  std::uint64_t exhausted() const { return exhausted_; }
  /// Per-ErrorClass tally of failed upstream attempts (REFUSED answers
  /// count under kRcode even though the transport reported success).
  const util::ErrorCounters& error_counts() const { return error_counts_; }

 private:
  struct Upstream {
    UpstreamConfig config;
    /// One transport per protocol in the chain, created on first use.
    std::vector<std::unique_ptr<dox::DnsTransport>> transports;
    double ewma_latency_ms = 0.0;
    bool has_latency = false;
    int consecutive_failures = 0;
    std::uint64_t attempts = 0;
    std::uint64_t failures = 0;
    SimTime quarantined_until = 0;
    bool admin_enabled = true;
  };

  /// A candidate attempt: upstream index + position in its protocol chain.
  struct Candidate {
    std::size_t upstream;
    std::size_t protocol;
  };

  struct Pending;

  bool available(const Upstream& upstream, SimTime now) const;
  std::vector<Candidate> plan(SimTime now) const;
  dox::DnsTransport& transport(std::size_t upstream, std::size_t protocol);
  void start_attempt(const std::shared_ptr<Pending>& pending);
  void finish_attempt(const std::shared_ptr<Pending>& pending, int attempt,
                      std::size_t upstream_index, dox::QueryResult result);
  void record_success(Upstream& upstream, SimTime latency);
  void record_failure(Upstream& upstream);

  sim::Simulator& sim_;
  dox::TransportDeps deps_;
  PoolConfig config_;
  std::vector<Upstream> upstreams_;
  std::uint64_t attempts_issued_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t exhausted_ = 0;
  util::ErrorCounters error_counts_;
};

}  // namespace doxlab::engine
