#include "engine/scenario.h"

#include "net/network.h"
#include "resolver/resolver.h"
#include "tcp/tcp.h"

namespace doxlab::engine {

namespace {

/// The canonical abuse chain, ordered the way an operator would stack it:
/// cheap protocol classifiers first, then volumetric limits, then
/// zone-specific shields, then routing.
policy::ChainConfig abuse_chain(const AbuseMix& abuse) {
  policy::ChainConfig chain;
  {
    // Amplification defence: this testbed's clients never ask for TXT.
    policy::RuleConfig rule;
    rule.name = "refuse-txt";
    rule.matcher = policy::MatcherKind::kQType;
    rule.qtype = dns::RRType::kTXT;
    rule.action = policy::ActionKind::kRefuse;
    chain.rules.push_back(std::move(rule));
  }
  {
    // Volumetric backstop: per-/24 budget, silently drop the excess.
    policy::RuleConfig rule;
    rule.name = "qps-per-24";
    rule.matcher = policy::MatcherKind::kRateLimit;
    rule.rate_qps = abuse.rate_limit_qps;
    rule.subnet_prefix_len = 24;
    rule.action = policy::ActionKind::kDrop;
    chain.rules.push_back(std::move(rule));
  }
  {
    // What leaks under the rate limit still never resolves.
    policy::RuleConfig rule;
    rule.name = "refuse-flood-zone";
    rule.matcher = policy::MatcherKind::kQnameSuffix;
    rule.suffixes = {"flood.example"};
    rule.action = policy::ActionKind::kRefuse;
    chain.rules.push_back(std::move(rule));
  }
  {
    policy::RuleConfig rule;
    rule.name = "drop-torture-zone";
    rule.matcher = policy::MatcherKind::kQnameSuffix;
    rule.suffixes = {"torture.example"};
    rule.action = policy::ActionKind::kDrop;
    chain.rules.push_back(std::move(rule));
  }
  {
    // Legit zone to the dedicated pool (same resolver, own connections).
    policy::RuleConfig rule;
    rule.name = "route-load-anycast";
    rule.matcher = policy::MatcherKind::kQnameSuffix;
    rule.suffixes = {"load.example"};
    rule.action = policy::ActionKind::kRoutePool;
    rule.pool = "anycast";
    chain.rules.push_back(std::move(rule));
  }
  return chain;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
  sim::Simulator sim;
  net::Network network(sim, Rng(config.seed));
  network.set_loss_rate(0.0);  // loss is the transports' business elsewhere

  net::Host& client_host = network.add_host(
      "engine-host", net::IpAddress::from_octets(10, 1, 0, 1),
      {50.11, 8.68}, net::Continent::kEurope);
  if (config.abuse.enabled) {
    // The amplification victim: its prefix must route *somewhere* for the
    // latency model, and the engine's answers to spoofed sources (the
    // backscatter) land here — never back at the bots.
    net::Host& victim = network.add_host(
        "victim", net::IpAddress::from_octets(203, 0, 113, 1),
        {40.71, -74.01}, net::Continent::kNorthAmerica);
    network.add_prefix_route(net::IpAddress::from_octets(203, 0, 113, 0), 24,
                             victim.address());
  }
  net::UdpStack udp(client_host);
  tcp::TcpStack tcp(client_host);
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;

  // Upstream resolvers at pinned RTTs, all speaking the full chain.
  std::vector<std::unique_ptr<resolver::DoxResolver>> resolvers;
  std::vector<UpstreamConfig> upstreams;
  for (std::size_t i = 0; i < config.upstream_one_way.size(); ++i) {
    resolver::ResolverProfile profile;
    profile.name = "upstream-" + std::to_string(i);
    profile.address =
        net::IpAddress::from_octets(10, 9, 0, static_cast<std::uint8_t>(i + 1));
    profile.location = {48.86, 2.35};
    profile.secret = 0xE0 + i;
    profile.drop_probability = 0.0;
    resolvers.push_back(std::make_unique<resolver::DoxResolver>(
        network, profile, Rng(config.seed + 100 + i)));
    network.set_path_override(client_host.address(), profile.address,
                              config.upstream_one_way[i]);

    UpstreamConfig upstream;
    upstream.name = profile.name;
    upstream.address = profile.address;
    upstream.protocols = config.protocols;
    upstreams.push_back(std::move(upstream));
  }

  dox::TransportDeps deps;
  deps.sim = &sim;
  deps.udp = &udp;
  deps.tcp = &tcp;
  deps.tickets = &tickets;
  deps.doq_cache = &doq_cache;

  EngineConfig engine_config = config.engine;
  LoadConfig load = config.load;
  load.target = net::Endpoint{client_host.address(),
                              config.engine.listen_port};

  if (config.abuse.enabled && !upstreams.empty()) {
    // Duplicate the primary into a dedicated "anycast" pool: the route rule
    // exercises named-pool routing at identical RTT.
    UpstreamConfig anycast = upstreams.front();
    anycast.name += "-anycast";
    anycast.pool = "anycast";
    upstreams.push_back(std::move(anycast));
    if (engine_config.policy.empty()) {
      engine_config.policy = abuse_chain(config.abuse);
    }

    // Every stub client gets its own address in 10.50.0.0/16; the bot
    // subnets live in 198.18.0.0/16 (RFC 2544 benchmarking space). Both
    // prefixes front the engine host, so replies route back to the
    // generator's sockets. The amplification victim prefix stays unrouted.
    load.client_base = net::IpAddress::from_octets(10, 50, 0, 0);
    load.client_span = 1 << 16;
    network.add_prefix_route(load.client_base, 16, client_host.address());
    network.add_prefix_route(net::IpAddress::from_octets(198, 18, 0, 0), 16,
                             client_host.address());

    const SimTime attack_duration =
        config.abuse.duration > 0
            ? config.abuse.duration
            : (load.duration > config.abuse.start
                   ? load.duration - config.abuse.start
                   : 0);
    AttackConfig flood;
    flood.kind = AttackKind::kRandomSubdomain;
    flood.qps = config.abuse.flood_qps;
    flood.start = config.abuse.start;
    flood.duration = attack_duration;
    flood.zone = "flood.example";
    flood.source_base = net::IpAddress::from_octets(198, 18, 0, 0);
    flood.source_count = 256;
    load.attacks.push_back(std::move(flood));

    AttackConfig torture;
    torture.kind = AttackKind::kWaterTorture;
    torture.qps = config.abuse.torture_qps;
    torture.start = config.abuse.start;
    torture.duration = attack_duration;
    torture.zone = "torture.example";
    torture.source_base = net::IpAddress::from_octets(198, 18, 1, 0);
    torture.source_count = 256;
    load.attacks.push_back(std::move(torture));

    AttackConfig amp;
    amp.kind = AttackKind::kAmplification;
    amp.qps = config.abuse.amp_qps;
    amp.start = config.abuse.start;
    amp.duration = attack_duration;
    amp.zone = "amp.example";
    amp.source_base = net::IpAddress::from_octets(203, 0, 113, 0);
    amp.source_count = 256;
    load.attacks.push_back(std::move(amp));
  }

  ForwarderEngine engine(sim, udp, deps, std::move(upstreams),
                         engine_config);
  LoadGenerator generator(sim, udp, load);

  if (config.kill_primary_at > 0 && !resolvers.empty()) {
    sim.at(config.kill_primary_at,
           [&resolvers] { resolvers.front()->host().set_up(false); });
  }

  // Arrival window, then enough slack for in-flight queries to settle
  // (client timeout plus a full pool fallback walk).
  sim.run_until(load.duration + load.client_timeout + 15 * kSecond);

  ScenarioResult result;
  result.engine = engine.stats();
  result.load = generator.report();
  result.attacks = generator.attack_reports();
  result.offered_qps = load.qps;
  result.engine_qps = engine.observed_qps();
  result.events = sim.events_executed();
  return result;
}

}  // namespace doxlab::engine
