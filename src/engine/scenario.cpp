#include "engine/scenario.h"

#include "net/network.h"
#include "resolver/resolver.h"
#include "tcp/tcp.h"

namespace doxlab::engine {

ScenarioResult run_scenario(const ScenarioConfig& config) {
  sim::Simulator sim;
  net::Network network(sim, Rng(config.seed));
  network.set_loss_rate(0.0);  // loss is the transports' business elsewhere

  net::Host& client_host = network.add_host(
      "engine-host", net::IpAddress::from_octets(10, 1, 0, 1),
      {50.11, 8.68}, net::Continent::kEurope);
  net::UdpStack udp(client_host);
  tcp::TcpStack tcp(client_host);
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;

  // Upstream resolvers at pinned RTTs, all speaking the full chain.
  std::vector<std::unique_ptr<resolver::DoxResolver>> resolvers;
  std::vector<UpstreamConfig> upstreams;
  for (std::size_t i = 0; i < config.upstream_one_way.size(); ++i) {
    resolver::ResolverProfile profile;
    profile.name = "upstream-" + std::to_string(i);
    profile.address =
        net::IpAddress::from_octets(10, 9, 0, static_cast<std::uint8_t>(i + 1));
    profile.location = {48.86, 2.35};
    profile.secret = 0xE0 + i;
    profile.drop_probability = 0.0;
    resolvers.push_back(std::make_unique<resolver::DoxResolver>(
        network, profile, Rng(config.seed + 100 + i)));
    network.set_path_override(client_host.address(), profile.address,
                              config.upstream_one_way[i]);

    UpstreamConfig upstream;
    upstream.name = profile.name;
    upstream.address = profile.address;
    upstream.protocols = config.protocols;
    upstreams.push_back(std::move(upstream));
  }

  dox::TransportDeps deps;
  deps.sim = &sim;
  deps.udp = &udp;
  deps.tcp = &tcp;
  deps.tickets = &tickets;
  deps.doq_cache = &doq_cache;

  ForwarderEngine engine(sim, udp, deps, std::move(upstreams),
                         config.engine);

  LoadConfig load = config.load;
  load.target = net::Endpoint{client_host.address(),
                              config.engine.listen_port};
  LoadGenerator generator(sim, udp, load);

  if (config.kill_primary_at > 0 && !resolvers.empty()) {
    sim.at(config.kill_primary_at,
           [&resolvers] { resolvers.front()->host().set_up(false); });
  }

  // Arrival window, then enough slack for in-flight queries to settle
  // (client timeout plus a full pool fallback walk).
  sim.run_until(load.duration + load.client_timeout + 15 * kSecond);

  ScenarioResult result;
  result.engine = engine.stats();
  result.load = generator.report();
  result.offered_qps = load.qps;
  result.engine_qps = engine.observed_qps();
  result.events = sim.events_executed();
  return result;
}

}  // namespace doxlab::engine
