// Shared congestion-control primitives for the transport stacks.
//
// One controller instance owns the congestion window of one flow. The
// transport (tcp::TcpConnection, quic::QuicConnection) keeps its own
// reliability machinery — retransmit queues, RTO/PTO timers, dup-ack or
// packet-threshold loss detection — and reports three things here:
// bytes acknowledged, loss events (with the *send time* of the lost
// packet), and retransmission-timeout fires. The controller answers the
// only question the transport needs: how many bytes may be in flight.
//
// Two algorithms:
//   * NewReno (RFC 6582 / RFC 9002 §B): slow start to ssthresh, AIMD
//     congestion avoidance, multiplicative decrease on loss with ONE
//     window reduction per recovery episode. Episodes are keyed on send
//     time exactly as RFC 9002 does: a loss of a packet sent before the
//     current recovery began does not shrink the window again.
//   * CUBIC (RFC 9438): the cubic window growth function with fast
//     convergence, sharing the same episode bookkeeping. Time is the
//     simulator's deterministic clock, so growth is bit-reproducible.
//
// RTO handling follows RFC 5681 §3.1 / RFC 9002 §7.6: the window collapses
// to the loss window and slow start restarts; under RFC 9002 the caller
// signals *persistent congestion* explicitly (on_persistent_congestion).
//
// The optional trace records (time, cwnd, phase) on every change — the
// adverse-path bench asserts slow-start -> recovery transitions from it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace doxlab::cc {

enum class CcAlgorithm {
  kNewReno,
  kCubic,
  /// The seed model's Tahoe-style behaviour: slow-start growth on every
  /// ack (no ssthresh, no recovery episodes) and collapse to ONE segment
  /// on timeout. Kept as the TCP default so every pinned artifact stays
  /// bit-identical; adverse-path scenarios select kNewReno or kCubic.
  kLegacySlowStart,
};

/// Controller phase, exposed for stats/traces.
enum class CcPhase {
  kSlowStart,
  kCongestionAvoidance,
  kRecovery,
};

const char* phase_name(CcPhase phase);

struct CcConfig {
  CcAlgorithm algorithm = CcAlgorithm::kNewReno;
  /// Sender maximum segment (TCP) / datagram payload (QUIC) size in bytes;
  /// the unit of all window arithmetic.
  std::size_t mss = 1460;
  /// Initial window, segments (RFC 6928 / RFC 9002 §7.2 both say 10).
  std::size_t initial_window_segments = 10;
  /// Floor for the collapsed window (RFC 9002 minimum window: 2 datagrams).
  std::size_t min_window_segments = 2;
  /// NewReno multiplicative-decrease factor (RFC 9002 §7.3.1: 0.5).
  double loss_reduction = 0.5;
  /// CUBIC constant C (RFC 9438 §4.1) and multiplicative decrease beta.
  double cubic_c = 0.4;
  double cubic_beta = 0.7;
  /// Record a (time, cwnd, phase) sample on every window change.
  bool trace = false;
};

/// One sample of the congestion-window trace.
struct CcTracePoint {
  SimTime at = 0;
  std::size_t cwnd = 0;
  CcPhase phase = CcPhase::kSlowStart;
};

class CongestionController {
 public:
  explicit CongestionController(CcConfig config = {});

  /// Bytes the flow may have un-acknowledged right now.
  std::size_t cwnd() const { return cwnd_; }
  std::size_t ssthresh() const { return ssthresh_; }
  CcPhase phase() const;
  bool in_slow_start() const { return cwnd_ < ssthresh_ && !in_recovery_; }

  /// True if a packet sent at `sent_at` predates the current recovery
  /// episode (its loss must not trigger another window reduction).
  bool in_recovery(SimTime sent_at) const {
    return in_recovery_ && sent_at <= recovery_start_;
  }

  /// `bytes` newly acknowledged; `sent_at` is when the newest acked packet
  /// left, `now` the simulated ack time. Grows the window (slow start or
  /// avoidance) unless the ack is for recovery-episode data.
  void on_ack(std::size_t bytes, SimTime sent_at, SimTime now);

  /// A packet sent at `sent_at` was declared lost (fast retransmit /
  /// packet-threshold detection). Returns true when this starts a NEW
  /// recovery episode (window reduced); false when the loss belongs to the
  /// episode already being repaired.
  bool on_loss(SimTime sent_at, SimTime now);

  /// Retransmission timeout fired: collapse to the loss window and restart
  /// slow start (RFC 5681 §3.1). Also what RFC 9002 persistent congestion
  /// does to the window.
  void on_rto(SimTime now);
  void on_persistent_congestion(SimTime now) { on_rto(now); }

  const CcConfig& config() const { return config_; }
  const std::vector<CcTracePoint>& trace() const { return trace_; }
  std::uint64_t loss_episodes() const { return loss_episodes_; }

  /// Whether dup-ack fast retransmit / fast recovery applies (everything
  /// but the legacy collapse-only mode).
  bool fast_recovery_enabled() const {
    return config_.algorithm != CcAlgorithm::kLegacySlowStart;
  }

 private:
  void reduce_window(SimTime now);
  void grow_newreno(std::size_t bytes);
  void grow_cubic(SimTime now);
  void record(SimTime now);

  CcConfig config_;
  std::size_t cwnd_;
  std::size_t ssthresh_;
  bool in_recovery_ = false;
  SimTime recovery_start_ = -1;
  std::uint64_t loss_episodes_ = 0;

  /// NewReno congestion-avoidance byte accumulator (grow one MSS per
  /// cwnd-worth of acked bytes).
  std::size_t avoidance_acked_ = 0;

  /// CUBIC epoch state (RFC 9438 notation).
  double cubic_w_max_ = 0.0;     // window before the last reduction, segments
  double cubic_k_ = 0.0;         // time to regain w_max, seconds
  SimTime cubic_epoch_start_ = -1;
  std::size_t cubic_w_est_ = 0;  // Reno-friendly estimate, bytes

  std::vector<CcTracePoint> trace_;
};

}  // namespace doxlab::cc
