#include "cc/cc.h"

#include <algorithm>
#include <cmath>

namespace doxlab::cc {

const char* phase_name(CcPhase phase) {
  switch (phase) {
    case CcPhase::kSlowStart: return "slow_start";
    case CcPhase::kCongestionAvoidance: return "avoidance";
    case CcPhase::kRecovery: return "recovery";
  }
  return "?";
}

CongestionController::CongestionController(CcConfig config)
    : config_(config),
      cwnd_(config.initial_window_segments * config.mss),
      ssthresh_(static_cast<std::size_t>(-1)) {}

CcPhase CongestionController::phase() const {
  if (in_recovery_) return CcPhase::kRecovery;
  return cwnd_ < ssthresh_ ? CcPhase::kSlowStart
                           : CcPhase::kCongestionAvoidance;
}

void CongestionController::record(SimTime now) {
  if (!config_.trace) return;
  // Coalesce same-instant samples so a burst of acks records once.
  if (!trace_.empty() && trace_.back().at == now &&
      trace_.back().phase == phase()) {
    trace_.back().cwnd = cwnd_;
    return;
  }
  trace_.push_back(CcTracePoint{now, cwnd_, phase()});
}

void CongestionController::on_ack(std::size_t bytes, SimTime sent_at,
                                  SimTime now) {
  if (bytes == 0) return;
  if (config_.algorithm == CcAlgorithm::kLegacySlowStart) {
    // Seed behaviour: grow on every ack, retransmitted data included.
    cwnd_ += std::min(bytes, config_.mss * 2);
    record(now);
    return;
  }
  if (in_recovery_) {
    if (sent_at <= recovery_start_) return;  // repairing old data: no growth
    // An ack of data sent after the reduction ends the episode (RFC 6582's
    // full-ack exit, expressed in time like RFC 9002).
    in_recovery_ = false;
  }
  if (cwnd_ < ssthresh_) {
    // Slow start: one MSS per MSS acked (exponential per RTT), capped so a
    // single jumbo ack cannot overshoot ssthresh by more than the overage.
    cwnd_ += std::min(bytes, config_.mss * 2);
    record(now);
    return;
  }
  switch (config_.algorithm) {
    case CcAlgorithm::kNewReno:
      grow_newreno(bytes);
      break;
    case CcAlgorithm::kCubic:
      cubic_w_est_ += static_cast<std::size_t>(
          static_cast<double>(bytes) *
          (3.0 * (1.0 - config_.cubic_beta) / (1.0 + config_.cubic_beta)));
      grow_cubic(now);
      break;
    case CcAlgorithm::kLegacySlowStart:
      break;  // handled above
  }
  record(now);
}

void CongestionController::grow_newreno(std::size_t bytes) {
  // Congestion avoidance: cwnd += MSS per cwnd bytes acked (RFC 5681 §3.1).
  avoidance_acked_ += bytes;
  if (avoidance_acked_ >= cwnd_) {
    avoidance_acked_ -= cwnd_;
    cwnd_ += config_.mss;
  }
}

void CongestionController::grow_cubic(SimTime now) {
  if (cubic_epoch_start_ < 0) {
    cubic_epoch_start_ = now;
    if (cubic_w_max_ <= 0.0) {
      cubic_w_max_ = static_cast<double>(cwnd_) /
                     static_cast<double>(config_.mss);
    }
    cubic_k_ = std::cbrt(cubic_w_max_ * (1.0 - config_.cubic_beta) /
                         config_.cubic_c);
    cubic_w_est_ = std::max(cubic_w_est_, cwnd_);
  }
  const double t =
      static_cast<double>(now - cubic_epoch_start_) / kSecond;  // seconds
  const double dt = t - cubic_k_;
  const double w_cubic =
      config_.cubic_c * dt * dt * dt + cubic_w_max_;  // segments
  const std::size_t target = static_cast<std::size_t>(
      std::max(w_cubic, 0.0) * static_cast<double>(config_.mss));
  // Reno-friendly region: never slower than the AIMD estimate (RFC 9438 §4.3).
  const std::size_t floor_bytes = cubic_w_est_;
  std::size_t next = std::max(target, floor_bytes);
  // Never grow by more than one MSS per ack nor shrink outside reductions.
  next = std::min(next, cwnd_ + config_.mss);
  cwnd_ = std::max(cwnd_, next);
}

bool CongestionController::on_loss(SimTime sent_at, SimTime now) {
  if (config_.algorithm == CcAlgorithm::kLegacySlowStart) {
    on_rto(now);
    return true;
  }
  if (in_recovery(sent_at)) return false;
  reduce_window(now);
  return true;
}

void CongestionController::reduce_window(SimTime now) {
  in_recovery_ = true;
  recovery_start_ = now;
  ++loss_episodes_;
  const std::size_t floor_bytes = config_.min_window_segments * config_.mss;
  switch (config_.algorithm) {
    case CcAlgorithm::kNewReno:
      cwnd_ = std::max(
          floor_bytes,
          static_cast<std::size_t>(static_cast<double>(cwnd_) *
                                   config_.loss_reduction));
      break;
    case CcAlgorithm::kCubic: {
      const double w = static_cast<double>(cwnd_) /
                       static_cast<double>(config_.mss);
      // Fast convergence (RFC 9438 §4.6): release share when w_max falls.
      cubic_w_max_ = w < cubic_w_max_ ? w * (1.0 + config_.cubic_beta) / 2.0
                                      : w;
      cwnd_ = std::max(floor_bytes,
                       static_cast<std::size_t>(static_cast<double>(cwnd_) *
                                                config_.cubic_beta));
      cubic_epoch_start_ = -1;  // new epoch starts at the next growth
      cubic_w_est_ = cwnd_;
      break;
    }
    case CcAlgorithm::kLegacySlowStart:
      break;  // never reached: on_loss short-circuits to on_rto
  }
  ssthresh_ = std::max(cwnd_, floor_bytes);
  avoidance_acked_ = 0;
  record(now);
}

void CongestionController::on_rto(SimTime now) {
  if (config_.algorithm == CcAlgorithm::kLegacySlowStart) {
    // Seed behaviour: collapse to one segment; no ssthresh, no episode
    // bookkeeping — growth resumes on the very next ack.
    cwnd_ = config_.mss;
    ++loss_episodes_;
    record(now);
    return;
  }
  // Collapse to the loss window and restart slow start. The halved ssthresh
  // remembers where avoidance should resume (RFC 5681 §3.1 / RFC 9002 §7.6).
  const std::size_t floor_bytes = config_.min_window_segments * config_.mss;
  ssthresh_ = std::max(cwnd_ / 2, floor_bytes);
  cwnd_ = floor_bytes;
  in_recovery_ = true;
  recovery_start_ = now;
  ++loss_episodes_;
  avoidance_acked_ = 0;
  if (config_.algorithm == CcAlgorithm::kCubic) {
    const double w = ssthresh_ > 0
                         ? static_cast<double>(ssthresh_) * 2.0 /
                               static_cast<double>(config_.mss)
                         : 0.0;
    cubic_w_max_ = std::max(cubic_w_max_, w);
    cubic_epoch_start_ = -1;
    cubic_w_est_ = cwnd_;
  }
  record(now);
}

}  // namespace doxlab::cc
