// Small-buffer-optimized callback type for the event loop.
//
// Every scheduled event used to carry a `std::function<void()>` inside a
// `std::make_shared` state block — two heap allocations per event on the
// simulator's hottest path. `EventFn` stores the callable inline when it
// fits (the fabric's packet-delivery lambda, retransmission timers, and
// every other capture-a-few-pointers closure in the codebase does) and only
// falls back to the heap for oversized captures. Move-only: the simulator
// is the sole owner of a scheduled callback.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace doxlab::sim {

namespace detail {
/// Process-wide count of heap fallbacks (atomic: campaign workers run one
/// simulator per thread). Exposed through EventFn::heap_allocations() so
/// tests can assert the hot path stays allocation-free.
inline std::atomic<std::uint64_t> g_event_fn_heap_allocs{0};
}  // namespace detail

/// Type-erased `void()` callable with inline storage for small captures.
class EventFn {
 public:
  /// Inline capture budget, sized so the largest hot-path closure — the
  /// packet fabric's delivery lambda (a whole `net::Packet` plus two
  /// pointers) — never heap-allocates.
  static constexpr std::size_t kInlineSize = 96;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT: match std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT: implicit, like std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = ops_for<Fn, /*Inline=*/true>();
    } else {
      detail::g_event_fn_heap_allocs.fetch_add(1, std::memory_order_relaxed);
      *reinterpret_cast<Fn**>(static_cast<void*>(storage_)) =
          new Fn(std::forward<F>(f));
      ops_ = ops_for<Fn, /*Inline=*/false>();
    }
  }

  /// Destroys the current callable (if any) and constructs `f` directly in
  /// this object's storage — no temporary EventFn, no relocate. The hot-path
  /// `Simulator::at` uses this to build the capture straight into its slab
  /// slot.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = ops_for<Fn, /*Inline=*/true>();
    } else {
      detail::g_event_fn_heap_allocs.fetch_add(1, std::memory_order_relaxed);
      *reinterpret_cast<Fn**>(static_cast<void*>(storage_)) =
          new Fn(std::forward<F>(f));
      ops_ = ops_for<Fn, /*Inline=*/false>();
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  /// Invokes then destroys the callable in one indirect call — the event
  /// loop's pop path, where separate invoke + destroy dispatches would cost
  /// an extra indirect branch per event. Leaves this EventFn empty.
  void invoke_consume() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(storage_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the held callable (releases captured object graphs now, not
  /// at the event's scheduled time).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// True if the callable lives in the inline buffer (or is empty).
  bool is_inline() const noexcept {
    return ops_ == nullptr || ops_->inline_stored;
  }

  /// Heap fallbacks taken since process start (test/bench hook).
  static std::uint64_t heap_allocations() {
    return detail::g_event_fn_heap_allocs.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Invokes then destroys in one dispatch (destroys even on throw).
    void (*invoke_destroy)(void* storage);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_stored;
  };

  template <typename Fn, bool Inline>
  static const Ops* ops_for() {
    if constexpr (Inline) {
      static constexpr Ops ops = {
          [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
          [](void* s) {
            Fn* f = std::launder(reinterpret_cast<Fn*>(s));
            struct Guard {
              Fn* f;
              ~Guard() { f->~Fn(); }
            } guard{f};
            (*f)();
          },
          [](void* dst, void* src) noexcept {
            Fn* f = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
          },
          [](void* s) noexcept {
            std::launder(reinterpret_cast<Fn*>(s))->~Fn();
          },
          true};
      return &ops;
    } else {
      static constexpr Ops ops = {
          [](void* s) { (**reinterpret_cast<Fn**>(s))(); },
          [](void* s) {
            Fn* f = *reinterpret_cast<Fn**>(s);
            struct Guard {
              Fn* f;
              ~Guard() { delete f; }
            } guard{f};
            (*f)();
          },
          [](void* dst, void* src) noexcept {
            *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
          },
          [](void* s) noexcept { delete *reinterpret_cast<Fn**>(s); },
          false};
      return &ops;
    }
  }

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace doxlab::sim
