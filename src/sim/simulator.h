// Discrete-event simulator core.
//
// A single-threaded event loop over simulated time. Events scheduled for the
// same instant fire in scheduling order (a monotonically increasing sequence
// number breaks ties), which keeps runs deterministic.
//
// Protocol state machines interact with the simulator through two verbs:
//   schedule(delay, fn)  — run fn after a relative delay
//   at(time, fn)         — run fn at an absolute time
// Both return a `Timer` handle that can cancel the event (needed for
// retransmission timers that are disarmed by an ACK).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/types.h"

namespace doxlab::sim {

class Simulator;

/// Cancellation handle for a scheduled event. Copyable; all copies refer to
/// the same underlying event. Cancelling an already-fired event is a no-op.
class Timer {
 public:
  Timer() = default;

  /// Prevents the event from firing. Safe to call multiple times.
  void cancel();

  /// True if the event has neither fired nor been cancelled.
  bool armed() const;

 private:
  friend class Simulator;
  struct State {
    std::function<void()> fn;
    bool cancelled = false;
    bool fired = false;
  };
  explicit Timer(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// The event loop. One instance drives one experiment.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to zero.
  Timer schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time (clamped to be >= now()).
  Timer at(SimTime time, std::function<void()> fn);

  /// Runs until the event queue is empty.
  void run();

  /// Runs events with time <= `deadline`; leaves later events queued and
  /// advances the clock to `deadline`.
  void run_until(SimTime deadline);

  /// Runs at most one event. Returns false if the queue was empty.
  bool step();

  /// Number of events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::shared_ptr<Timer::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace doxlab::sim
