// Discrete-event simulator core.
//
// A single-threaded event loop over simulated time. Events scheduled for the
// same instant fire in scheduling order (a monotonically increasing sequence
// number breaks ties), which keeps runs deterministic.
//
// Protocol state machines interact with the simulator through two verbs:
//   schedule(delay, fn)  — run fn after a relative delay
//   at(time, fn)         — run fn at an absolute time
// Both return a `Timer` handle that can cancel the event (needed for
// retransmission timers that are disarmed by an ACK).
//
// Hot-path layout: events live in a slab of pooled slots (recycled through a
// free list, generation-counted so stale `Timer` handles can never touch a
// reused slot), the priority queue holds small (time, seq, slot) records,
// and callbacks are small-buffer-optimized `EventFn`s — zero heap
// allocations per event once the slab is warm. Cancellation is lazy:
// cancelled entries stay queued until popped, but when more than half of the
// queue is dead (retransmission timers disarmed by ACKs) a compaction sweep
// drops them and re-heapifies, keeping pop cost proportional to live events.
// schedule/at are templates so the callable's erasure ops are still known
// constants where they inline — the compiler flattens the capture move into
// the slot instead of bouncing through function pointers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_fn.h"
#include "util/types.h"

namespace doxlab::sim {

class Simulator;

namespace detail {

/// The slab + queue state. Owned jointly by the Simulator and any Timer
/// handles (via CorePtr below) so handles stay valid — and simply report
/// disarmed — after the Simulator dies.
struct SimCore {
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  /// Compaction only kicks in past this queue size: tiny queues are cheap
  /// to skip through and re-heapifying them would dominate.
  static constexpr std::size_t kCompactionMinEntries = 64;

  /// One pooled event record. `gen` increments every time the slot is
  /// released, invalidating outstanding Timer handles.
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoSlot;
    bool in_use = false;
    bool cancelled = false;
  };

  /// Priority-queue record; `slot` points into the slab.
  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Max-heap comparator whose "largest" element fires first: earliest
  /// time, then lowest sequence number.
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Slot> slots;
  std::vector<QueueEntry> heap;
  std::uint32_t free_head = kNoSlot;
  std::uint64_t next_seq = 0;
  std::size_t live = 0;   // queued and not cancelled
  std::size_t dead = 0;   // cancelled entries still sitting in `heap`
  std::uint64_t compactions = 0;

  std::uint32_t acquire() {
    if (free_head != kNoSlot) {
      const std::uint32_t idx = free_head;
      free_head = slots[idx].next_free;
      slots[idx].in_use = true;
      return idx;
    }
    slots.emplace_back();
    slots.back().in_use = true;
    return static_cast<std::uint32_t>(slots.size() - 1);
  }

  void release(std::uint32_t idx) {
    Slot& s = slots[idx];
    s.fn.reset();
    ++s.gen;
    s.in_use = false;
    s.cancelled = false;
    s.next_free = free_head;
    free_head = idx;
  }

  void push(SimTime time, std::uint32_t slot) {
    heap.push_back(QueueEntry{time, next_seq++, slot});
    std::push_heap(heap.begin(), heap.end(), Later{});
  }

  QueueEntry pop() {
    std::pop_heap(heap.begin(), heap.end(), Later{});
    const QueueEntry entry = heap.back();
    heap.pop_back();
    return entry;
  }

  bool cancel(std::uint32_t idx, std::uint32_t gen);
  bool armed(std::uint32_t idx, std::uint32_t gen) const;
  void maybe_compact();

  std::uint32_t refs = 0;  // managed by CorePtr
};

/// Intrusive, deliberately non-atomic refcounted pointer to SimCore. A
/// simulator and all of its Timer handles live on one thread (parallel
/// campaigns give each task its own simulator), so the count needs no
/// synchronization — which keeps Timer construction on the schedule hot
/// path free of locked instructions (a shared_ptr copy costs two once any
/// thread exists in the process).
class CorePtr {
 public:
  CorePtr() = default;
  explicit CorePtr(SimCore* core) : core_(core) {
    if (core_ != nullptr) ++core_->refs;
  }
  CorePtr(const CorePtr& other) : core_(other.core_) {
    if (core_ != nullptr) ++core_->refs;
  }
  CorePtr(CorePtr&& other) noexcept : core_(other.core_) {
    other.core_ = nullptr;
  }
  CorePtr& operator=(CorePtr other) noexcept {
    std::swap(core_, other.core_);
    return *this;
  }
  ~CorePtr() {
    if (core_ != nullptr && --core_->refs == 0) delete core_;
  }

  SimCore& operator*() const { return *core_; }
  SimCore* operator->() const { return core_; }
  explicit operator bool() const { return core_ != nullptr; }

 private:
  SimCore* core_ = nullptr;
};

}  // namespace detail

/// Cancellation handle for a scheduled event. Copyable; all copies refer to
/// the same underlying event. Cancelling an already-fired event is a no-op.
/// Handles keep the slab alive (like the seed's shared state block) so they
/// stay safe to poke even after the Simulator is destroyed.
class Timer {
 public:
  Timer() = default;

  /// Prevents the event from firing. Safe to call multiple times.
  void cancel();

  /// True if the event has neither fired nor been cancelled.
  bool armed() const;

 private:
  friend class Simulator;
  Timer(const detail::CorePtr& core, std::uint32_t slot, std::uint32_t gen)
      : core_(core), slot_(slot), gen_(gen) {}

  detail::CorePtr core_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// The event loop. One instance drives one experiment.
class Simulator {
 public:
  Simulator() : core_(new detail::SimCore) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Destroys every still-queued closure. Closures routinely capture Timer
  /// handles (retransmission timers owned by the objects they fire on), and
  /// a Timer keeps the slab alive — leaving the closures in place would
  /// cycle and leak their object graphs. Slot metadata survives so
  /// outstanding handles still answer armed()/cancel() safely.
  ~Simulator() {
    for (detail::SimCore::Slot& slot : core_->slots) slot.fn.reset();
  }

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to zero.
  template <typename F>
  Timer schedule(SimTime delay, F&& fn) {
    if (delay < 0) delay = 0;
    return at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at an absolute time (clamped to be >= now()).
  template <typename F>
  Timer at(SimTime time, F&& fn) {
    if (time < now_) time = now_;
    detail::SimCore& core = *core_;
    const std::uint32_t idx = core.acquire();
    detail::SimCore::Slot& slot = core.slots[idx];
    // Construct the capture directly into the slab slot; where this
    // inlines, the erasure ops are compile-time constants and the store is
    // a plain copy of the capture bytes.
    try {
      slot.fn.emplace(std::forward<F>(fn));
    } catch (...) {
      core.release(idx);
      throw;
    }
    core.push(time, idx);
    ++core.live;
    return Timer(core_, idx, slot.gen);
  }

  /// Runs until the event queue is empty.
  void run() {
    while (step_before(kSimTimeNever)) {
    }
  }

  /// Runs events with time <= `deadline`; leaves later events queued and
  /// advances the clock to `deadline`.
  void run_until(SimTime deadline) {
    while (step_before(deadline)) {
    }
    if (now_ < deadline) now_ = deadline;
  }

  /// Runs at most one event. Returns false if the queue was empty.
  bool step() { return step_before(kSimTimeNever); }

  /// Number of events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  /// Order-sensitive digest of the executed event stream: every fired
  /// event folds its (time, sequence-number) pair into a 64-bit mix. Two
  /// runs that execute the same events at the same simulated times in the
  /// same order — and only those — agree on the digest, which is what the
  /// sharded-engine determinism tests pin: a shard's stream must be a pure
  /// function of its seed, never of wall-clock interleaving with other
  /// shards.
  std::uint64_t event_stream_digest() const { return stream_digest_; }

  /// Number of live (not cancelled) pending events.
  std::size_t pending() const { return core_->live; }

  /// Queue entries including lazily-cancelled ones (compaction test hook).
  std::size_t queued_entries() const { return core_->heap.size(); }

  /// Number of lazy-cancel compaction sweeps performed (test hook).
  std::uint64_t compactions() const { return core_->compactions; }

 private:
  /// Pops and runs the earliest live event if its time is <= `deadline`
  /// (skipping and reclaiming cancelled entries on the way). Returns false
  /// if nothing fired. Shared by step(), run() and run_until().
  bool step_before(SimTime deadline) {
    detail::SimCore& core = *core_;
    while (!core.heap.empty()) {
      const detail::SimCore::QueueEntry& top = core.heap.front();
      if (core.slots[top.slot].cancelled) {
        const auto entry = core.pop();
        core.release(entry.slot);
        --core.dead;
        continue;
      }
      if (top.time > deadline) return false;
      const auto entry = core.pop();
      now_ = entry.time;
      // Move the closure out and free the slot *before* invoking so that
      // re-entrant scheduling from within the callback sees a consistent
      // slab (and cancelling the running event's own Timer is a no-op).
      EventFn fn = std::move(core.slots[entry.slot].fn);
      core.release(entry.slot);
      --core.live;
      ++executed_;
      // Two multiplies and a xor per event: noise next to the heap pop,
      // and it buys a run-to-run fingerprint of the whole schedule.
      stream_digest_ ^= static_cast<std::uint64_t>(entry.time) +
                        0x9E3779B97F4A7C15ull * (entry.seq + 1);
      stream_digest_ *= 0xBF58476D1CE4E5B9ull;
      fn.invoke_consume();
      return true;
    }
    return false;
  }

  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t stream_digest_ = 0x6A09E667F3BCC909ull;  // sqrt(2) seed
  detail::CorePtr core_;
};

}  // namespace doxlab::sim
