#include "sim/simulator.h"

#include <utility>

namespace doxlab::sim {

void Timer::cancel() {
  if (!state_) return;
  state_->cancelled = true;
  // Release the closure immediately: cancelled entries stay queued until
  // their scheduled time, and closures can hold large object graphs alive.
  state_->fn = nullptr;
}

bool Timer::armed() const {
  return state_ && !state_->cancelled && !state_->fired;
}

Timer Simulator::schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return at(now_ + delay, std::move(fn));
}

Timer Simulator::at(SimTime time, std::function<void()> fn) {
  if (time < now_) time = now_;
  auto state = std::make_shared<Timer::State>();
  state->fn = std::move(fn);
  queue_.push(Entry{time, next_seq_++, state});
  return Timer(std::move(state));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (entry.state->cancelled) continue;
    now_ = entry.time;
    entry.state->fired = true;
    ++executed_;
    // Move the closure out so that re-entrant scheduling from within the
    // callback cannot observe a half-dead entry.
    auto fn = std::move(entry.state->fn);
    fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Peek over cancelled entries without executing live ones past deadline.
    const Entry& top = queue_.top();
    if (top.state->cancelled) {
      queue_.pop();
      continue;
    }
    if (top.time > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace doxlab::sim
