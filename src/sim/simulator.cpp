#include "sim/simulator.h"

namespace doxlab::sim {

namespace detail {

bool SimCore::cancel(std::uint32_t idx, std::uint32_t gen) {
  if (idx >= slots.size()) return false;
  Slot& s = slots[idx];
  if (!s.in_use || s.gen != gen || s.cancelled) return false;
  s.cancelled = true;
  // Release the closure immediately: cancelled entries stay queued until
  // popped or compacted, and closures can hold large object graphs alive.
  s.fn.reset();
  --live;
  ++dead;
  maybe_compact();
  return true;
}

bool SimCore::armed(std::uint32_t idx, std::uint32_t gen) const {
  return idx < slots.size() && slots[idx].in_use && slots[idx].gen == gen &&
         !slots[idx].cancelled;
}

void SimCore::maybe_compact() {
  if (heap.size() < kCompactionMinEntries || dead * 2 <= heap.size()) return;
  auto keep = heap.begin();
  for (const QueueEntry& entry : heap) {
    if (slots[entry.slot].cancelled) {
      release(entry.slot);
    } else {
      *keep++ = entry;
    }
  }
  heap.erase(keep, heap.end());
  std::make_heap(heap.begin(), heap.end(), Later{});
  dead = 0;
  ++compactions;
}

}  // namespace detail

void Timer::cancel() {
  if (core_) core_->cancel(slot_, gen_);
}

bool Timer::armed() const {
  return static_cast<bool>(core_) && core_->armed(slot_, gen_);
}

}  // namespace doxlab::sim
