#include "quic/wire.h"

#include <algorithm>

namespace doxlab::quic {

std::string_view version_name(QuicVersion v) {
  switch (v) {
    case QuicVersion::kV1: return "v1";
    case QuicVersion::kDraft29: return "draft-29";
    case QuicVersion::kDraft32: return "draft-32";
    case QuicVersion::kDraft34: return "draft-34";
  }
  return "unknown";
}

std::vector<std::uint8_t> AddressToken::encode() const {
  ByteWriter w;
  w.u64(server_secret);
  w.u32(client_ip);
  w.u64(static_cast<std::uint64_t>(issued_at));
  w.u64(static_cast<std::uint64_t>(lifetime));
  w.u8(from_retry ? 1 : 0);
  // Real tokens are AEAD-sealed blobs; pad to a realistic size (~48 bytes).
  w.pad(48 - w.size());
  return w.take();
}

std::optional<AddressToken> AddressToken::decode(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  AddressToken t;
  auto secret = r.u64();
  auto ip = r.u32();
  auto issued = r.u64();
  auto lifetime = r.u64();
  auto retry = r.u8();
  if (!secret || !ip || !issued || !lifetime || !retry) return std::nullopt;
  t.server_secret = *secret;
  t.client_ip = *ip;
  t.issued_at = static_cast<SimTime>(*issued);
  t.lifetime = static_cast<SimTime>(*lifetime);
  t.from_retry = *retry != 0;
  return t;
}

PnSpace space_of(PacketType type) {
  switch (type) {
    case PacketType::kInitial: return PnSpace::kInitial;
    case PacketType::kHandshake: return PnSpace::kHandshake;
    case PacketType::kZeroRtt:
    case PacketType::kOneRtt: return PnSpace::kAppData;
    case PacketType::kRetry:
    case PacketType::kVersionNegotiation: return PnSpace::kInitial;
  }
  return PnSpace::kInitial;
}

namespace {

constexpr std::size_t kAeadTag = 16;
constexpr std::size_t kCidBytes = 8;

// First-byte encodings. Long header: form bit 0x80 + fixed 0x40 + type.
constexpr std::uint8_t kFirstInitial = 0xC0;
constexpr std::uint8_t kFirstZeroRtt = 0xD0;
constexpr std::uint8_t kFirstHandshake = 0xE0;
constexpr std::uint8_t kFirstRetry = 0xF0;
constexpr std::uint8_t kFirstOneRtt = 0x40;

/// RFC 9000 §16 varint width for `v` (1, 2, 4 or 8 bytes).
constexpr std::size_t varint_size(std::uint64_t v) {
  if (v < (1ull << 6)) return 1;
  if (v < (1ull << 14)) return 2;
  if (v < (1ull << 30)) return 4;
  return 8;
}

/// Exact encoded size of `frames`; mirrors encode_frames() case by case.
std::size_t encoded_frames_size(const std::vector<Frame>& frames) {
  std::size_t total = 0;
  for (const Frame& f : frames) {
    switch (f.type) {
      case FrameType::kPadding:
      case FrameType::kPing:
      case FrameType::kHandshakeDone:
        total += 1;
        break;
      case FrameType::kAck: {
        total += 1;
        if (f.ack_ranges.empty()) {
          total += 4;  // four zero varints
          break;
        }
        const AckRange& top = f.ack_ranges.front();
        total += varint_size(top.last) + varint_size(0) +
                 varint_size(f.ack_ranges.size() - 1) +
                 varint_size(top.last - top.first);
        std::uint64_t prev_first = top.first;
        for (std::size_t i = 1; i < f.ack_ranges.size(); ++i) {
          const AckRange& r = f.ack_ranges[i];
          total += varint_size(prev_first - r.last - 2) +
                   varint_size(r.last - r.first);
          prev_first = r.first;
        }
        break;
      }
      case FrameType::kCrypto:
        total += 1 + varint_size(f.offset) + varint_size(f.data.size()) +
                 f.data.size();
        break;
      case FrameType::kNewToken:
        total += 1 + varint_size(f.token.size()) + f.token.size();
        break;
      case FrameType::kStream:
        total += 1 + varint_size(f.stream_id) + varint_size(f.offset) +
                 varint_size(f.data.size()) + f.data.size();
        break;
      case FrameType::kConnectionClose:
        total += 1 + varint_size(f.error_code) + varint_size(0) +
                 varint_size(f.reason.size()) + f.reason.size();
        break;
    }
  }
  return total;
}

void encode_frames(ByteWriter& w, const std::vector<Frame>& frames) {
  for (const Frame& f : frames) {
    switch (f.type) {
      case FrameType::kPadding:
        w.u8(0x00);
        break;
      case FrameType::kPing:
        w.u8(0x01);
        break;
      case FrameType::kAck: {
        // RFC 9000 §19.3: largest, delay, range count, first range, then
        // alternating gap/length pairs, all descending.
        w.u8(0x02);
        if (f.ack_ranges.empty()) {
          w.varint(0);
          w.varint(0);
          w.varint(0);
          w.varint(0);
          break;
        }
        const AckRange& top = f.ack_ranges.front();
        w.varint(top.last);
        w.varint(0);  // ack delay
        w.varint(f.ack_ranges.size() - 1);
        w.varint(top.last - top.first);
        std::uint64_t prev_first = top.first;
        for (std::size_t i = 1; i < f.ack_ranges.size(); ++i) {
          const AckRange& r = f.ack_ranges[i];
          // gap = number of missing packets between ranges - 1.
          w.varint(prev_first - r.last - 2);
          w.varint(r.last - r.first);
          prev_first = r.first;
        }
        break;
      }
      case FrameType::kCrypto:
        w.u8(0x06);
        w.varint(f.offset);
        w.varint(f.data.size());
        w.bytes(f.data);
        break;
      case FrameType::kNewToken:
        w.u8(0x07);
        w.varint(f.token.size());
        w.bytes(f.token);
        break;
      case FrameType::kStream: {
        // STREAM with OFF|LEN bits (+FIN).
        std::uint8_t first = 0x08 | 0x04 | 0x02 | (f.fin ? 0x01 : 0x00);
        w.u8(first);
        w.varint(f.stream_id);
        w.varint(f.offset);
        w.varint(f.data.size());
        w.bytes(f.data);
        break;
      }
      case FrameType::kConnectionClose:
        w.u8(0x1C);
        w.varint(f.error_code);
        w.varint(0);  // frame type
        w.varint(f.reason.size());
        w.bytes(f.reason);
        break;
      case FrameType::kHandshakeDone:
        w.u8(0x1E);
        break;
    }
  }
}

std::optional<std::vector<Frame>> decode_frames(
    std::span<const std::uint8_t> payload) {
  std::vector<Frame> out;
  ByteReader r(payload);
  while (!r.at_end()) {
    auto first = r.u8();
    if (!first) return std::nullopt;
    Frame f;
    switch (*first) {
      case 0x00:
        continue;  // padding: not materialized
      case 0x01:
        f.type = FrameType::kPing;
        break;
      case 0x02: {
        f.type = FrameType::kAck;
        auto largest = r.varint();
        auto delay = r.varint();
        auto range_count = r.varint();
        auto range0 = r.varint();
        if (!largest || !delay || !range_count || !range0) return std::nullopt;
        if (*range0 > *largest) return std::nullopt;
        f.ack_ranges.push_back(AckRange{*largest - *range0, *largest});
        std::uint64_t prev_first = *largest - *range0;
        for (std::uint64_t i = 0; i < *range_count; ++i) {
          auto gap = r.varint();
          auto len = r.varint();
          if (!gap || !len) return std::nullopt;
          if (*gap + 2 > prev_first) return std::nullopt;
          const std::uint64_t last = prev_first - *gap - 2;
          if (*len > last) return std::nullopt;
          f.ack_ranges.push_back(AckRange{last - *len, last});
          prev_first = last - *len;
        }
        break;
      }
      case 0x06: {
        f.type = FrameType::kCrypto;
        auto offset = r.varint();
        auto len = r.varint();
        if (!offset || !len) return std::nullopt;
        auto data = r.bytes(*len);
        if (!data) return std::nullopt;
        f.offset = *offset;
        f.data.assign(data->begin(), data->end());
        break;
      }
      case 0x07: {
        f.type = FrameType::kNewToken;
        auto len = r.varint();
        if (!len) return std::nullopt;
        auto data = r.bytes(*len);
        if (!data) return std::nullopt;
        f.token.assign(data->begin(), data->end());
        break;
      }
      case 0x1C: {
        f.type = FrameType::kConnectionClose;
        auto code = r.varint();
        auto frame_type = r.varint();
        auto len = r.varint();
        if (!code || !frame_type || !len) return std::nullopt;
        auto reason = r.string(*len);
        if (!reason) return std::nullopt;
        f.error_code = *code;
        f.reason = std::move(*reason);
        break;
      }
      case 0x1E:
        f.type = FrameType::kHandshakeDone;
        break;
      default: {
        if ((*first & 0xF8) == 0x08) {
          f.type = FrameType::kStream;
          f.fin = (*first & 0x01) != 0;
          auto id = r.varint();
          auto offset = r.varint();
          auto len = r.varint();
          if (!id || !offset || !len) return std::nullopt;
          auto data = r.bytes(*len);
          if (!data) return std::nullopt;
          f.stream_id = *id;
          f.offset = *offset;
          f.data.assign(data->begin(), data->end());
          break;
        }
        return std::nullopt;  // unknown frame type
      }
    }
    out.push_back(std::move(f));
  }
  return out;
}

/// Writes one packet into `w`; the frame payload goes straight into the
/// writer (the length varint is computed analytically up front, so no
/// intermediate body buffer is needed).
void encode_packet_into(ByteWriter& w, const QuicPacket& packet) {
  switch (packet.type) {
    case PacketType::kVersionNegotiation: {
      w.u8(0x80);
      w.u32(0);  // version 0 marks VN
      w.u8(kCidBytes);
      w.u64(packet.dcid);
      w.u8(kCidBytes);
      w.u64(packet.scid);
      for (QuicVersion v : packet.supported_versions) {
        w.u32(static_cast<std::uint32_t>(v));
      }
      return;
    }
    case PacketType::kRetry: {
      w.u8(kFirstRetry);
      w.u32(static_cast<std::uint32_t>(packet.version));
      w.u8(kCidBytes);
      w.u64(packet.dcid);
      w.u8(kCidBytes);
      w.u64(packet.scid);
      w.varint(packet.token.size());
      w.bytes(packet.token);
      w.pad(16);  // retry integrity tag
      return;
    }
    case PacketType::kInitial:
    case PacketType::kZeroRtt:
    case PacketType::kHandshake: {
      const std::uint8_t first = packet.type == PacketType::kInitial
                                     ? kFirstInitial
                                     : packet.type == PacketType::kZeroRtt
                                           ? kFirstZeroRtt
                                           : kFirstHandshake;
      w.u8(first);
      w.u32(static_cast<std::uint32_t>(packet.version));
      w.u8(kCidBytes);
      w.u64(packet.dcid);
      w.u8(kCidBytes);
      w.u64(packet.scid);
      if (packet.type == PacketType::kInitial) {
        w.varint(packet.token.size());
        w.bytes(packet.token);
      }
      // Length covers packet number (2 bytes) + payload + tag.
      w.varint(2 + encoded_frames_size(packet.frames) + kAeadTag);
      w.u16(static_cast<std::uint16_t>(packet.packet_number & 0xFFFF));
      encode_frames(w, packet.frames);
      w.pad(kAeadTag);
      return;
    }
    case PacketType::kOneRtt: {
      // Model simplification: short-header packets carry an explicit length
      // varint so coalesced parsing works without header protection.
      w.u8(kFirstOneRtt);
      w.u64(packet.dcid);
      w.varint(2 + encoded_frames_size(packet.frames) + kAeadTag);
      w.u16(static_cast<std::uint16_t>(packet.packet_number & 0xFFFF));
      encode_frames(w, packet.frames);
      w.pad(kAeadTag);
      return;
    }
  }
}

}  // namespace

std::vector<std::uint8_t> encode_packet(const QuicPacket& packet) {
  ByteWriter w(encoded_packet_size(packet));
  encode_packet_into(w, packet);
  return w.take();
}

std::size_t encoded_packet_size(const QuicPacket& packet) {
  switch (packet.type) {
    case PacketType::kVersionNegotiation:
      return 1 + 4 + (1 + 8) * 2 + 4 * packet.supported_versions.size();
    case PacketType::kRetry:
      return 1 + 4 + (1 + 8) * 2 + varint_size(packet.token.size()) +
             packet.token.size() + 16;
    case PacketType::kInitial:
    case PacketType::kZeroRtt:
    case PacketType::kHandshake: {
      const std::size_t body = 2 + encoded_frames_size(packet.frames) +
                               kAeadTag;
      std::size_t size = 1 + 4 + (1 + 8) * 2;
      if (packet.type == PacketType::kInitial) {
        size += varint_size(packet.token.size()) + packet.token.size();
      }
      return size + varint_size(body) + body;
    }
    case PacketType::kOneRtt: {
      const std::size_t body = 2 + encoded_frames_size(packet.frames) +
                               kAeadTag;
      return 1 + 8 + varint_size(body) + body;
    }
  }
  return 0;
}

util::Buffer encode_datagram(std::span<const QuicPacket> packets,
                             bool sender_is_client) {
  std::size_t total = 0;
  bool pad = false;
  for (const QuicPacket& p : packets) {
    if (p.type == PacketType::kInitial &&
        (sender_is_client || p.ack_eliciting())) {
      pad = true;
    }
    total += encoded_packet_size(p);
  }
  const std::size_t wire = pad ? std::max(total, kMinInitialDatagram) : total;
  ByteWriter w = ByteWriter::pooled(wire, /*headroom=*/0);
  for (const QuicPacket& p : packets) encode_packet_into(w, p);
  if (pad && w.size() < kMinInitialDatagram) {
    w.pad(kMinInitialDatagram - w.size());
  }
  return w.take_buffer();
}

std::optional<std::vector<QuicPacket>> decode_datagram(
    std::span<const std::uint8_t> datagram) {
  std::vector<QuicPacket> out;
  ByteReader r(datagram);
  while (!r.at_end()) {
    auto first = r.u8();
    if (!first) return std::nullopt;
    if (*first == 0x00) continue;  // datagram padding

    QuicPacket p;
    if ((*first & 0x80) != 0) {
      // Long header.
      auto version = r.u32();
      auto dcid_len = r.u8();
      if (!version || !dcid_len || *dcid_len != kCidBytes) return std::nullopt;
      auto dcid = r.u64();
      auto scid_len = r.u8();
      if (!dcid || !scid_len || *scid_len != kCidBytes) return std::nullopt;
      auto scid = r.u64();
      if (!scid) return std::nullopt;
      p.dcid = *dcid;
      p.scid = *scid;

      if (*version == 0) {
        p.type = PacketType::kVersionNegotiation;
        while (r.remaining() >= 4) {
          auto v = r.u32();
          p.supported_versions.push_back(static_cast<QuicVersion>(*v));
        }
        out.push_back(std::move(p));
        return out;  // VN is never coalesced
      }
      p.version = static_cast<QuicVersion>(*version);

      const std::uint8_t type_bits = *first & 0xF0;
      if (type_bits == kFirstRetry) {
        p.type = PacketType::kRetry;
        auto token_len = r.varint();
        if (!token_len) return std::nullopt;
        auto token = r.bytes(*token_len);
        if (!token) return std::nullopt;
        p.token.assign(token->begin(), token->end());
        if (!r.bytes(16)) return std::nullopt;  // integrity tag
        out.push_back(std::move(p));
        continue;
      }

      p.type = type_bits == kFirstInitial
                   ? PacketType::kInitial
                   : type_bits == kFirstZeroRtt ? PacketType::kZeroRtt
                                                : PacketType::kHandshake;
      if (p.type == PacketType::kInitial) {
        auto token_len = r.varint();
        if (!token_len) return std::nullopt;
        auto token = r.bytes(*token_len);
        if (!token) return std::nullopt;
        p.token.assign(token->begin(), token->end());
      }
      auto length = r.varint();
      if (!length || *length < 2 + kAeadTag) return std::nullopt;
      auto pn = r.u16();
      if (!pn) return std::nullopt;
      p.packet_number = *pn;
      auto payload = r.bytes(*length - 2 - kAeadTag);
      if (!payload) return std::nullopt;
      if (!r.bytes(kAeadTag)) return std::nullopt;
      auto frames = decode_frames(*payload);
      if (!frames) return std::nullopt;
      p.frames = std::move(*frames);
      out.push_back(std::move(p));
    } else {
      // Short header (1-RTT).
      p.type = PacketType::kOneRtt;
      auto dcid = r.u64();
      auto length = r.varint();
      if (!dcid || !length || *length < 2 + kAeadTag) return std::nullopt;
      p.dcid = *dcid;
      auto pn = r.u16();
      if (!pn) return std::nullopt;
      p.packet_number = *pn;
      auto payload = r.bytes(*length - 2 - kAeadTag);
      if (!payload) return std::nullopt;
      if (!r.bytes(kAeadTag)) return std::nullopt;
      auto frames = decode_frames(*payload);
      if (!frames) return std::nullopt;
      p.frames = std::move(*frames);
      out.push_back(std::move(p));
    }
  }
  return out;
}

}  // namespace doxlab::quic
