// QUIC protocol constants and small value types.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/types.h"

namespace doxlab::quic {

/// Wire versions observed in the paper's measurements (§3): QUIC v1 plus
/// the draft versions -29, -32 and -34 (all feature-equivalent).
enum class QuicVersion : std::uint32_t {
  kV1 = 0x00000001,
  kDraft29 = 0xFF00001D,
  kDraft32 = 0xFF000020,
  kDraft34 = 0xFF000022,
};

std::string_view version_name(QuicVersion v);

/// Minimum size of UDP datagrams carrying ack-eliciting INITIAL packets
/// (RFC 9000 §14.1) — the source of DoQ's handshake size overhead that
/// Table 1 of the paper quantifies.
inline constexpr std::size_t kMinInitialDatagram = 1200;

/// Anti-amplification factor (RFC 9000 §8.1): unvalidated servers may send
/// at most this multiple of the bytes received from the client.
inline constexpr std::size_t kAmplificationFactor = 3;

/// Address-validation token carried in NEW_TOKEN frames and presented in a
/// later INITIAL (RFC 9000 §8.1.3). The secret stands in for the server's
/// token key; validation checks secret, client address and freshness.
struct AddressToken {
  std::uint64_t server_secret = 0;
  std::uint32_t client_ip = 0;
  SimTime issued_at = 0;
  SimTime lifetime = 7 * kDay;
  /// True for tokens minted by a Retry packet (single-use, immediate).
  bool from_retry = false;

  std::vector<std::uint8_t> encode() const;
  static std::optional<AddressToken> decode(
      std::span<const std::uint8_t> data);

  bool valid_for(std::uint64_t secret, std::uint32_t ip, SimTime now) const {
    return server_secret == secret && client_ip == ip && now >= issued_at &&
           (now - issued_at) < lifetime;
  }
};

/// Packet-number spaces (RFC 9000 §12.3).
enum class PnSpace : std::uint8_t { kInitial = 0, kHandshake = 1, kAppData = 2 };
inline constexpr int kNumPnSpaces = 3;

}  // namespace doxlab::quic
