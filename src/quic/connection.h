// QUIC connection state machine (client and server endpoints).
//
// Implements the QUIC v1 mechanisms that drive the paper's findings:
//   * 1-RTT combined transport+crypto handshake (CRYPTO frames carry the
//     same TLS 1.3 messages as the TLS module),
//   * datagram padding of INITIAL-carrying datagrams to >= 1200 bytes
//     (clients pad all of them, servers pad ack-eliciting ones — RFC 9000
//     §14.1), which is why DoQ's handshake bytes are ~2x DoH's in Table 1,
//   * the 3x anti-amplification limit for unvalidated servers (RFC 9000
//     §8.1) — the cause of the +1 RTT stall in ~40% of the paper's
//     *preliminary* measurements, eliminated here by Session Resumption
//     because the server flight shrinks below 3x1200 bytes,
//   * address validation: Retry (+1 RTT, optional server policy) and
//     NEW_TOKEN tokens presented in later INITIALs,
//   * Version Negotiation (+1 RTT when the client guesses wrong),
//   * TLS Session Resumption and 0-RTT early data in QUIC packets,
//   * PTO-based loss recovery with a 1 s initial timeout (RFC 9002),
//   * client-initiated bidirectional streams (one DoQ query per stream).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "cc/cc.h"
#include "net/udp.h"
#include "quic/types.h"
#include "quic/wire.h"
#include "sim/simulator.h"
#include "tls/ticket.h"
#include "tls/wire.h"
#include "util/error.h"

namespace doxlab::quic {

struct QuicConfig {
  bool is_server = false;
  /// Client: the version offered in the first INITIAL (learned per resolver
  /// during cache warming in the study). Server: preferred version.
  QuicVersion version = QuicVersion::kV1;
  /// Versions this endpoint can speak.
  std::vector<QuicVersion> supported = {QuicVersion::kV1,
                                        QuicVersion::kDraft34,
                                        QuicVersion::kDraft32,
                                        QuicVersion::kDraft29};
  /// ALPN: client offers in order of preference; server filters.
  std::vector<std::string> alpn;
  std::string sni;
  std::size_t certificate_chain_size = 3000;
  bool enable_session_tickets = true;
  bool enable_0rtt = false;
  /// Server: validate addresses with Retry when no token is presented.
  bool require_retry = false;
  /// Server: hand out a NEW_TOKEN after the handshake.
  bool send_new_token = true;
  /// Server identity for ticket/token validation.
  std::uint64_t ticket_secret = 0;
  SimTime idle_timeout = 60 * kSecond;
  /// RFC 9002: PTO before any RTT sample (kInitialRtt 333ms x3 ~= 1 s).
  SimTime initial_pto = 1 * kSecond;
  int max_pto_count = 7;
  /// Largest UDP payload we emit (1252 - 8 byte UDP header model keeps the
  /// IP payload at a common Ethernet-safe size).
  std::size_t max_datagram_size = 1252;
  /// Server: the peer's IPv4 address (for token minting/validation);
  /// filled in by QuicServer.
  std::uint32_t peer_ip = 0;
  tls::WireSizes tls_sizes = {};
  /// RFC 9002 congestion control (shared src/cc module): cwnd-capped
  /// sending, packet-threshold loss detection, recovery episodes,
  /// persistent congestion. Off by default — the seed's PTO-only recovery
  /// is the pinned baseline; adverse-path studies enable it.
  bool enable_cc = false;
  cc::CcAlgorithm congestion_algorithm = cc::CcAlgorithm::kNewReno;
  /// Record the controller's (time, cwnd, phase) trace (benches/tests).
  bool cc_trace = false;
};

/// Facts about a completed QUIC handshake.
struct QuicHandshakeInfo {
  QuicVersion version = QuicVersion::kV1;
  std::string alpn;
  bool resumed = false;
  bool early_data_accepted = false;
  bool used_retry = false;
  bool used_version_negotiation = false;
  bool presented_token = false;
  /// True if the server stalled on the amplification limit (client observed
  /// an incomplete flight needing an extra round trip).
  bool amplification_stall = false;
};

/// A QUIC endpoint. Client instances own their socket; server instances are
/// created by QuicServer and share its socket.
class QuicConnection : public std::enable_shared_from_this<QuicConnection> {
 public:
  struct Callbacks {
    std::function<void(const QuicHandshakeInfo&)> on_handshake_complete;
    /// In-order stream payload; `fin` marks the peer's final byte.
    std::function<void(std::uint64_t stream_id,
                       std::span<const std::uint8_t> data, bool fin)>
        on_stream_data;
    std::function<void(const tls::SessionTicket&)> on_new_ticket;
    std::function<void(const AddressToken&)> on_new_token;
    /// Connection ended; kNone means clean close. kTimeout for idle/PTO
    /// expiry, kQuicTransportError for a peer CONNECTION_CLOSE with an
    /// error code, kProtocolError for malformed flights, kTlsAlert for
    /// ALPN failure.
    std::function<void(const util::Error&)> on_closed;
    /// Raw datagram egress (wired to a UDP socket by the owner). The buffer
    /// is pooled and uniquely owned; sinks may ship it as-is.
    std::function<void(util::Buffer)> send_datagram;
  };

  /// Client factory.
  static std::shared_ptr<QuicConnection> make_client(sim::Simulator& sim,
                                                     QuicConfig config,
                                                     Callbacks callbacks);
  /// Server factory (used by QuicServer).
  static std::shared_ptr<QuicConnection> make_server(
      sim::Simulator& sim, QuicConfig config, Callbacks callbacks,
      bool address_validated);

  /// Client: starts the handshake. The ticket enables resumption (and 0-RTT
  /// when permitted); the token skips server address validation.
  void connect(std::optional<tls::SessionTicket> ticket = std::nullopt,
               std::optional<AddressToken> token = std::nullopt);

  /// Client: opens the next bidirectional stream and sends `data` on it.
  /// Pre-handshake data is queued (or flies as 0-RTT when eligible).
  /// Returns the stream id (0, 4, 8, ...).
  std::uint64_t open_stream(std::vector<std::uint8_t> data, bool fin);

  /// Sends data on an existing stream (server responses use this).
  void send_stream(std::uint64_t stream_id, std::vector<std::uint8_t> data,
                   bool fin);

  /// Sends CONNECTION_CLOSE and tears down.
  void close(std::uint64_t error_code = 0, std::string reason = "");

  /// Feeds a received datagram into the connection.
  void on_datagram(std::span<const std::uint8_t> datagram);

  // Post-construction handler attachment (used by QuicServer accept hooks;
  // the closed handler set here is invoked *in addition* to the one passed
  // at construction, which QuicServer uses for map cleanup).
  void set_on_handshake_complete(
      std::function<void(const QuicHandshakeInfo&)> fn) {
    cb_.on_handshake_complete = std::move(fn);
  }
  void set_on_stream_data(
      std::function<void(std::uint64_t, std::span<const std::uint8_t>, bool)>
          fn) {
    cb_.on_stream_data = std::move(fn);
  }
  void set_on_new_ticket(std::function<void(const tls::SessionTicket&)> fn) {
    cb_.on_new_ticket = std::move(fn);
  }
  void set_on_new_token(std::function<void(const AddressToken&)> fn) {
    cb_.on_new_token = std::move(fn);
  }
  void set_on_closed(std::function<void(const util::Error&)> fn) {
    app_on_closed_ = std::move(fn);
  }

  bool handshake_complete() const { return complete_; }
  bool closed() const { return closed_; }
  const std::optional<QuicHandshakeInfo>& info() const { return info_; }
  QuicVersion version() const { return version_; }

  /// IP payload bytes (UDP header + datagram) sent/received.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t pto_count_total() const { return total_ptos_; }

  /// Congestion controller state (cwnd/phase/trace/loss episodes).
  const cc::CongestionController& congestion() const { return cc_; }
  std::size_t bytes_in_flight() const { return bytes_in_flight_; }
  /// Packets declared lost by ack-based (packet threshold) detection.
  std::uint64_t packets_declared_lost() const { return packets_lost_; }

 private:
  QuicConnection(sim::Simulator& sim, QuicConfig config, Callbacks callbacks);

  // --- output path ---
  struct PendingSpace {
    std::vector<Frame> frames;
    bool ack_only = true;
  };
  void queue_frame(PnSpace space, Frame frame);
  void queue_crypto(PnSpace space, std::vector<std::uint8_t> message);
  void flush_output();
  void send_datagrams(std::vector<std::vector<QuicPacket>> datagrams);
  std::size_t amplification_budget() const;

  // --- input path ---
  void process_packet(const QuicPacket& packet);
  void process_frames(PnSpace space, const QuicPacket& packet);
  void process_crypto_stream(PnSpace space);
  void handle_tls_message(PnSpace space, const tls::HandshakeMessage& msg);
  void handle_ack(PnSpace space, const Frame& ack);
  void detect_losses(PnSpace space, std::uint64_t largest_acked);
  std::vector<AckRange> build_ack_ranges(PnSpace space) const;
  void handle_stream_frame(const Frame& frame);
  void handle_version_negotiation(const QuicPacket& packet);
  void handle_retry(const QuicPacket& packet);

  // --- handshake logic ---
  void send_client_initial();
  void server_respond_to_client_hello(const tls::ClientHello& ch);
  void complete_handshake();
  void fail(util::Error error);

  // --- loss recovery ---
  void notify_closed(const util::Error& error);
  void arm_pto();
  void on_pto();
  SimTime current_pto() const;
  void update_rtt(SimTime sample);

  void touch_idle_timer();

  sim::Simulator& sim_;
  QuicConfig config_;
  Callbacks cb_;
  std::function<void(const util::Error&)> app_on_closed_;
  tls::TlsWire tls_wire_;

  QuicVersion version_;
  std::uint64_t local_cid_;
  std::uint64_t remote_cid_ = 0;
  bool complete_ = false;
  bool closed_ = false;
  std::optional<QuicHandshakeInfo> info_;
  QuicHandshakeInfo pending_info_;

  // Client handshake state.
  std::optional<tls::SessionTicket> ticket_;
  std::optional<AddressToken> token_;
  bool sent_early_data_ = false;
  bool connect_called_ = false;

  // Server negotiation state.
  bool address_validated_ = false;
  bool resumed_ = false;
  bool early_accepted_ = false;
  std::string negotiated_alpn_;
  std::uint64_t next_ticket_id_ = 1;

  // Crypto streams (per space): send offset + receive reassembly.
  struct CryptoStream {
    std::uint64_t send_offset = 0;
    std::uint64_t recv_consumed = 0;
    std::map<std::uint64_t, std::vector<std::uint8_t>> recv_buffer;
    std::vector<std::uint8_t> assembled;  // contiguous, unparsed messages
  };
  CryptoStream crypto_[kNumPnSpaces];

  // Application streams.
  struct Stream {
    std::uint64_t send_offset = 0;
    bool send_fin = false;
    std::uint64_t recv_consumed = 0;
    std::map<std::uint64_t, std::pair<std::vector<std::uint8_t>, bool>>
        recv_buffer;  // offset -> (data, fin)
    std::optional<std::uint64_t> fin_offset;
    bool fin_delivered = false;
  };
  std::map<std::uint64_t, Stream> streams_;
  std::uint64_t next_stream_id_ = 0;  // client-initiated bidi: 0,4,8,...
  struct QueuedStream {
    std::vector<std::uint8_t> data;
    bool fin;
    std::uint64_t id;
  };
  std::vector<QueuedStream> queued_streams_;  // pre-handshake

  // Packet numbers and reliability.
  std::uint64_t next_pn_[kNumPnSpaces] = {0, 0, 0};
  /// Packet numbers received per space (small sets; connections in the
  /// study exchange tens of packets at most).
  std::set<std::uint64_t> received_pns_[kNumPnSpaces];
  struct SentPacket {
    std::uint64_t pn;
    std::vector<Frame> retransmittable;  // frames worth recovering
    SimTime sent_at;
    bool ack_eliciting;
    std::size_t size = 0;  // encoded bytes, for in-flight accounting
  };
  std::deque<SentPacket> sent_[kNumPnSpaces];
  PendingSpace pending_[kNumPnSpaces];
  bool need_ack_[kNumPnSpaces] = {false, false, false};
  /// Raw token bytes echoed in INITIAL packets (from NEW_TOKEN or Retry).
  std::vector<std::uint8_t> initial_token_bytes_;
  /// True while processing an incoming datagram (defers flushes).
  bool processing_ = false;
  /// Completion callback deferred until the final handshake flight has been
  /// flushed, so byte counters observed in the callback include it.
  bool complete_callback_pending_ = false;

  // Amplification accounting (server, pre-validation).
  std::uint64_t unvalidated_received_ = 0;
  std::uint64_t unvalidated_sent_ = 0;
  std::vector<std::vector<QuicPacket>> blocked_datagrams_;
  bool was_amplification_blocked_ = false;

  // Congestion control (RFC 9002, enforcement gated by config_.enable_cc).
  cc::CongestionController cc_;
  std::size_t bytes_in_flight_ = 0;
  std::uint64_t packets_lost_ = 0;

  // RTT / PTO.
  std::optional<SimTime> srtt_;
  SimTime rttvar_ = 0;
  int pto_backoff_ = 0;
  std::uint64_t total_ptos_ = 0;
  sim::Timer pto_timer_;
  sim::Timer idle_timer_;

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t datagrams_sent_ = 0;
  bool in_flush_ = false;
};

}  // namespace doxlab::quic
