#include "quic/server.h"

#include "util/logging.h"

namespace doxlab::quic {

QuicServer::QuicServer(sim::Simulator& sim, net::UdpStack& stack,
                       std::uint16_t port, QuicConfig config)
    : sim_(sim), socket_(stack.bind(port)), config_(std::move(config)) {
  config_.is_server = true;
  socket_->on_datagram(
      [this](const net::Endpoint& from, util::Buffer payload) {
        on_datagram(from, std::move(payload));
      });
}

bool QuicServer::version_supported(QuicVersion v) const {
  for (QuicVersion s : config_.supported) {
    if (s == v) return true;
  }
  return false;
}

void QuicServer::on_datagram(const net::Endpoint& from,
                             util::Buffer payload) {
  auto existing = connections_.find(from);
  if (existing != connections_.end()) {
    existing->second->on_datagram(payload);
    if (existing->second->closed()) connections_.erase(from);
    return;
  }

  auto packets = decode_datagram(payload);
  if (!packets || packets->empty()) {
    // A malformed or unknown-version probe. Real servers that cannot parse
    // the packet stay silent; version negotiation is handled below only for
    // well-formed long headers, which decode_datagram accepted.
    return;
  }
  const QuicPacket& first = (*packets)[0];
  if (first.type != PacketType::kInitial) return;

  if (!version_supported(first.version)) {
    // Stateless Version Negotiation (RFC 9000 §6) — echoes the client's
    // connection IDs and lists what we do support.
    QuicPacket vn;
    vn.type = PacketType::kVersionNegotiation;
    vn.dcid = first.scid;
    vn.scid = first.dcid;
    vn.supported_versions = config_.supported;
    ++vn_sent_;
    socket_->send_to(from, encode_packet(vn));
    return;
  }

  // Address validation.
  bool validated = false;
  if (!first.token.empty()) {
    auto token = AddressToken::decode(first.token);
    validated = token && token->valid_for(config_.ticket_secret,
                                          from.address.value(), sim_.now());
  }
  if (config_.require_retry && !validated) {
    AddressToken token;
    token.server_secret = config_.ticket_secret;
    token.client_ip = from.address.value();
    token.issued_at = sim_.now();
    token.lifetime = 10 * kSecond;  // Retry tokens are short-lived
    token.from_retry = true;

    QuicPacket retry;
    retry.type = PacketType::kRetry;
    retry.version = first.version;
    retry.dcid = first.scid;
    retry.scid = 0x5EC0DE5EC0DE5EC0ull;
    retry.token = token.encode();
    ++retry_sent_;
    socket_->send_to(from, encode_packet(retry));
    return;
  }

  QuicConfig conn_config = config_;
  conn_config.peer_ip = from.address.value();
  conn_config.version = first.version;

  QuicConnection::Callbacks callbacks;
  callbacks.send_datagram = [this, from](util::Buffer bytes) {
    socket_->send_to(from, std::move(bytes));
  };
  auto conn = QuicConnection::make_server(sim_, std::move(conn_config),
                                          std::move(callbacks), validated);
  connections_[from] = conn;
  if (on_accept_) on_accept_(conn, from);
  conn->on_datagram(payload);
  if (conn->closed()) connections_.erase(from);
}

}  // namespace doxlab::quic
