// QUIC packet and frame codec.
//
// Packets are encoded byte-faithfully enough for the study's size accounting:
// long headers carry version, 8-byte connection IDs, the INITIAL token and a
// varint length; every protected packet pays a 16-byte AEAD tag; datagrams
// that contain an ack-eliciting INITIAL are padded to 1200 bytes. One
// deliberate simplification is documented inline: short-header (1-RTT)
// packets also carry an explicit length varint so that coalesced parsing
// needs no header protection logic.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "quic/types.h"
#include "util/buffer.h"
#include "util/bytes.h"

namespace doxlab::quic {

enum class PacketType : std::uint8_t {
  kInitial,
  kZeroRtt,
  kHandshake,
  kRetry,
  kVersionNegotiation,
  kOneRtt,
};

/// Which packet-number space a packet type belongs to.
PnSpace space_of(PacketType type);

enum class FrameType : std::uint8_t {
  kPadding = 0x00,
  kPing = 0x01,
  kAck = 0x02,
  kCrypto = 0x06,
  kNewToken = 0x07,
  kStream = 0x08,  // bits 0x08..0x0F; we always set LEN|OFF and FIN as needed
  kConnectionClose = 0x1C,
  kHandshakeDone = 0x1E,
};

/// Inclusive packet-number range [first, last].
struct AckRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  bool operator==(const AckRange&) const = default;
};

/// A decoded/encodable frame. Exactly the fields relevant to `type` are
/// meaningful; the rest stay default.
struct Frame {
  FrameType type = FrameType::kPadding;

  // kAck: ranges sorted descending by packet number (RFC 9000 §19.3).
  std::vector<AckRange> ack_ranges;

  // kCrypto / kStream.
  std::uint64_t offset = 0;
  std::vector<std::uint8_t> data;

  // kStream.
  std::uint64_t stream_id = 0;
  bool fin = false;

  // kNewToken.
  std::vector<std::uint8_t> token;

  // kConnectionClose.
  std::uint64_t error_code = 0;
  std::string reason;

  /// True for frames that demand acknowledgement (everything but ACK,
  /// PADDING and CONNECTION_CLOSE — RFC 9002 §2).
  bool ack_eliciting() const {
    return type != FrameType::kAck && type != FrameType::kPadding &&
           type != FrameType::kConnectionClose;
  }

  static Frame ack(std::vector<AckRange> ranges) {
    Frame f;
    f.type = FrameType::kAck;
    f.ack_ranges = std::move(ranges);
    return f;
  }

  /// True if `pn` falls inside any acknowledged range.
  bool acks(std::uint64_t pn) const {
    for (const AckRange& r : ack_ranges) {
      if (pn >= r.first && pn <= r.last) return true;
    }
    return false;
  }
  static Frame crypto(std::uint64_t offset, std::vector<std::uint8_t> data) {
    Frame f;
    f.type = FrameType::kCrypto;
    f.offset = offset;
    f.data = std::move(data);
    return f;
  }
  static Frame stream(std::uint64_t id, std::uint64_t offset,
                      std::vector<std::uint8_t> data, bool fin) {
    Frame f;
    f.type = FrameType::kStream;
    f.stream_id = id;
    f.offset = offset;
    f.data = std::move(data);
    f.fin = fin;
    return f;
  }
  static Frame new_token(std::vector<std::uint8_t> token) {
    Frame f;
    f.type = FrameType::kNewToken;
    f.token = std::move(token);
    return f;
  }
  static Frame connection_close(std::uint64_t code, std::string reason) {
    Frame f;
    f.type = FrameType::kConnectionClose;
    f.error_code = code;
    f.reason = std::move(reason);
    return f;
  }
  static Frame ping() {
    Frame f;
    f.type = FrameType::kPing;
    return f;
  }
  static Frame handshake_done() {
    Frame f;
    f.type = FrameType::kHandshakeDone;
    return f;
  }
};

/// A packet before encoding / after decoding.
struct QuicPacket {
  PacketType type = PacketType::kInitial;
  QuicVersion version = QuicVersion::kV1;
  std::uint64_t dcid = 0;
  std::uint64_t scid = 0;
  std::uint64_t packet_number = 0;
  std::vector<std::uint8_t> token;  // INITIAL: address token; Retry: minted
  std::vector<QuicVersion> supported_versions;  // VN only
  std::vector<Frame> frames;

  bool ack_eliciting() const {
    for (const Frame& f : frames) {
      if (f.ack_eliciting()) return true;
    }
    return false;
  }
};

/// Encodes one packet (including its 16-byte tag for protected types).
std::vector<std::uint8_t> encode_packet(const QuicPacket& packet);

/// Exact encoded size of `packet`, computed analytically without encoding.
/// Matches `encode_packet(packet).size()` byte for byte; used by the packet
/// scheduler to size datagrams without a throwaway encode per packet.
std::size_t encoded_packet_size(const QuicPacket& packet);

/// Encodes a datagram from coalesced packets, applying RFC 9000 §14.1
/// padding to 1200 bytes: clients pad every INITIAL-carrying datagram,
/// servers pad those carrying an ack-eliciting INITIAL. All coalesced
/// packets are written into one exactly-sized pooled buffer.
util::Buffer encode_datagram(std::span<const QuicPacket> packets,
                             bool sender_is_client);

/// Decodes all packets coalesced in a datagram; nullopt on malformed input.
/// Trailing zero padding is skipped.
std::optional<std::vector<QuicPacket>> decode_datagram(
    std::span<const std::uint8_t> datagram);

}  // namespace doxlab::quic
