#include "quic/connection.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace doxlab::quic {

namespace {
/// Conservative per-packet header + tag overhead used when splitting frames
/// across packets (actual encoding is exact; this only bounds chunk sizes).
constexpr std::size_t kPacketOverhead = 80;
/// Per-frame overhead bound (type + varints).
constexpr std::size_t kFrameOverhead = 24;
/// RFC 9002 §6.1.1 packet reordering threshold: a packet is declared lost
/// when one sent at least this many packet numbers later is acknowledged.
constexpr std::uint64_t kPacketThreshold = 3;
}  // namespace

std::shared_ptr<QuicConnection> QuicConnection::make_client(
    sim::Simulator& sim, QuicConfig config, Callbacks callbacks) {
  config.is_server = false;
  return std::shared_ptr<QuicConnection>(
      new QuicConnection(sim, std::move(config), std::move(callbacks)));
}

std::shared_ptr<QuicConnection> QuicConnection::make_server(
    sim::Simulator& sim, QuicConfig config, Callbacks callbacks,
    bool address_validated) {
  config.is_server = true;
  auto conn = std::shared_ptr<QuicConnection>(
      new QuicConnection(sim, std::move(config), std::move(callbacks)));
  conn->address_validated_ = address_validated;
  return conn;
}

QuicConnection::QuicConnection(sim::Simulator& sim, QuicConfig config,
                               Callbacks callbacks)
    : sim_(sim),
      config_(std::move(config)),
      cb_(std::move(callbacks)),
      tls_wire_(config_.tls_sizes),
      version_(config_.version),
      local_cid_(config_.is_server ? 0x5EC0DE5EC0DE5EC0ull
                                   : 0xC11E27C11E27C11Eull) {
  cc::CcConfig cc_config;
  cc_config.algorithm = config_.congestion_algorithm;
  cc_config.mss = config_.max_datagram_size;
  cc_config.trace = config_.cc_trace;
  cc_ = cc::CongestionController(cc_config);
  touch_idle_timer();
}

void QuicConnection::touch_idle_timer() {
  idle_timer_.cancel();
  auto self = weak_from_this();
  idle_timer_ = sim_.schedule(config_.idle_timeout, [self] {
    if (auto conn = self.lock()) {
      if (conn->closed_) return;
      conn->closed_ = true;
      conn->pto_timer_.cancel();
      conn->notify_closed(util::Error::timeout("QUIC idle timeout"));
    }
  });
}

// --------------------------------------------------------------- client API

void QuicConnection::connect(std::optional<tls::SessionTicket> ticket,
                             std::optional<AddressToken> token) {
  if (config_.is_server || connect_called_) {
    fail(util::Error::protocol("connect() on server or already-connected endpoint"));
    return;
  }
  connect_called_ = true;
  ticket_ = std::move(ticket);
  if (token) {
    token_ = token;
    initial_token_bytes_ = token->encode();
    pending_info_.presented_token = true;
  }
  send_client_initial();
}

void QuicConnection::send_client_initial() {
  tls::ClientHello ch;
  ch.max_version = tls::TlsVersion::kTls13;  // QUIC mandates TLS 1.3
  ch.sni = config_.sni;
  ch.alpn = config_.alpn;

  const bool ticket_usable = ticket_ && ticket_->valid_at(sim_.now());
  if (ticket_usable) ch.psk = *ticket_;
  const bool early_eligible = ticket_usable && config_.enable_0rtt &&
                              ticket_->allow_early_data &&
                              !queued_streams_.empty();
  ch.early_data = early_eligible;

  queue_crypto(PnSpace::kInitial, tls_wire_.client_hello_message(ch));

  if (early_eligible) {
    sent_early_data_ = true;
    for (auto& qs : queued_streams_) {
      Stream& stream = streams_[qs.id];
      queue_frame(PnSpace::kAppData,
                  Frame::stream(qs.id, stream.send_offset, qs.data, qs.fin));
      stream.send_offset += qs.data.size();
      stream.send_fin = qs.fin;
    }
  }
  if (!processing_) flush_output();
}

std::uint64_t QuicConnection::open_stream(std::vector<std::uint8_t> data,
                                          bool fin) {
  const std::uint64_t id = next_stream_id_;
  next_stream_id_ += 4;
  if (!complete_) {
    queued_streams_.push_back(QueuedStream{std::move(data), fin, id});
    // If connect() already fired and 0-RTT is active, ship it immediately
    // as another 0-RTT packet.
    if (sent_early_data_) {
      QueuedStream& qs = queued_streams_.back();
      Stream& stream = streams_[qs.id];
      queue_frame(PnSpace::kAppData,
                  Frame::stream(qs.id, stream.send_offset, qs.data, qs.fin));
      stream.send_offset += qs.data.size();
      stream.send_fin = qs.fin;
      if (!processing_) flush_output();
    }
    return id;
  }
  Stream& stream = streams_[id];
  const std::size_t len = data.size();
  queue_frame(PnSpace::kAppData,
              Frame::stream(id, stream.send_offset, std::move(data), fin));
  stream.send_offset += len;
  stream.send_fin = fin;
  if (!processing_) flush_output();
  return id;
}

void QuicConnection::send_stream(std::uint64_t stream_id,
                                 std::vector<std::uint8_t> data, bool fin) {
  if (closed_) return;
  if (!config_.is_server && !complete_) {
    // Client before handshake completion (e.g. an HTTP/3 control stream):
    // queue like open_stream does — the data rides 0-RTT when early data is
    // active, or flushes with the handshake-completion flight otherwise.
    queued_streams_.push_back(QueuedStream{std::move(data), fin, stream_id});
    if (sent_early_data_) {
      QueuedStream& qs = queued_streams_.back();
      Stream& stream = streams_[qs.id];
      queue_frame(PnSpace::kAppData,
                  Frame::stream(qs.id, stream.send_offset, qs.data, qs.fin));
      stream.send_offset += qs.data.size();
      stream.send_fin = qs.fin;
      if (!processing_) flush_output();
    }
    return;
  }
  Stream& stream = streams_[stream_id];
  Frame f = Frame::stream(stream_id, stream.send_offset, std::move(data), fin);
  stream.send_offset += f.data.size();
  stream.send_fin = fin;
  queue_frame(PnSpace::kAppData, std::move(f));
  if (!processing_) flush_output();
}

void QuicConnection::close(std::uint64_t error_code, std::string reason) {
  if (closed_) return;
  // Before handshake completion both endpoints close in the Initial space.
  const PnSpace space = complete_ ? PnSpace::kAppData : PnSpace::kInitial;
  queue_frame(space, Frame::connection_close(error_code, reason));
  flush_output();
  closed_ = true;
  pto_timer_.cancel();
  idle_timer_.cancel();
  notify_closed(util::Error::none());
}

void QuicConnection::fail(util::Error error) {
  if (closed_) return;
  closed_ = true;
  pto_timer_.cancel();
  idle_timer_.cancel();
  DOXLAB_DEBUG("QUIC failure: " << error);
  notify_closed(error);
}

void QuicConnection::notify_closed(const util::Error& error) {
  if (cb_.on_closed) cb_.on_closed(error);
  if (app_on_closed_) app_on_closed_(error);
  // Break reference cycles: user callbacks routinely capture shared_ptrs to
  // this connection or to its owning transport state, which in turn owns
  // this connection. Dropping the handlers (one event-loop turn later, so a
  // currently-executing closure is never destroyed mid-call) lets the whole
  // object graph — including the UDP socket and its port — be reclaimed.
  auto self = shared_from_this();
  sim_.schedule(0, [self] {
    self->cb_ = Callbacks{};
    self->app_on_closed_ = nullptr;
  });
}

// ------------------------------------------------------------- output path

void QuicConnection::queue_frame(PnSpace space, Frame frame) {
  auto& pending = pending_[static_cast<int>(space)];
  if (frame.ack_eliciting()) pending.ack_only = false;
  pending.frames.push_back(std::move(frame));
}

void QuicConnection::queue_crypto(PnSpace space,
                                  std::vector<std::uint8_t> message) {
  auto& crypto = crypto_[static_cast<int>(space)];
  Frame f = Frame::crypto(crypto.send_offset, std::move(message));
  crypto.send_offset += f.data.size();
  queue_frame(space, std::move(f));
}

std::size_t QuicConnection::amplification_budget() const {
  if (!config_.is_server || address_validated_) {
    return static_cast<std::size_t>(-1);
  }
  const std::uint64_t allowed = kAmplificationFactor * unvalidated_received_;
  return allowed > unvalidated_sent_
             ? static_cast<std::size_t>(allowed - unvalidated_sent_)
             : 0;
}

void QuicConnection::flush_output() {
  if (in_flush_) return;
  in_flush_ = true;

  // Build packets directly into datagrams, filling each datagram up to the
  // MTU before opening the next. This matters for the INITIAL datagram
  // padding rule: a server coalesces INITIAL(ServerHello) with as much
  // HANDSHAKE data as fits, so the mandatory 1200-byte padding carries
  // useful bytes — which is exactly what decides whether a certificate
  // chain squeezes under the 3x anti-amplification budget.
  std::vector<std::vector<QuicPacket>> datagrams;
  std::vector<QuicPacket> current;
  std::size_t current_size = 0;
  auto close_datagram = [&] {
    if (!current.empty()) {
      datagrams.push_back(std::move(current));
      current.clear();
      current_size = 0;
    }
  };

  auto packet_type = [&](PnSpace sp) {
    switch (sp) {
      case PnSpace::kInitial: return PacketType::kInitial;
      case PnSpace::kHandshake: return PacketType::kHandshake;
      case PnSpace::kAppData:
        return (!config_.is_server && !complete_) ? PacketType::kZeroRtt
                                                  : PacketType::kOneRtt;
    }
    return PacketType::kOneRtt;
  };

  // RFC 9002 §7: with congestion control enforced, ack-eliciting frames may
  // only fill the window headroom; the excess stays pending and flushes when
  // acknowledgements free window (on_datagram always re-flushes). Pure ACKs
  // and CONNECTION_CLOSE are never blocked.
  std::size_t window_room = static_cast<std::size_t>(-1);
  if (config_.enable_cc) {
    window_room = cc_.cwnd() > bytes_in_flight_
                      ? cc_.cwnd() - bytes_in_flight_
                      : 0;
  }

  for (int s = 0; s < kNumPnSpaces; ++s) {
    auto space = static_cast<PnSpace>(s);
    auto& pending = pending_[s];
    std::vector<Frame> frames;
    if (need_ack_[s]) {
      auto ranges = build_ack_ranges(space);
      if (!ranges.empty()) frames.push_back(Frame::ack(std::move(ranges)));
      need_ack_[s] = false;
    }
    std::vector<Frame> deferred;
    for (auto& f : pending.frames) {
      if (!f.ack_eliciting()) {
        frames.push_back(std::move(f));
        continue;
      }
      if (!deferred.empty()) {
        // Later data must stay behind the first deferral (stream order).
        deferred.push_back(std::move(f));
        continue;
      }
      const std::size_t cost = f.data.size() + f.token.size() +
                               f.reason.size() + kFrameOverhead;
      if (cost <= window_room) {
        window_room -= cost;
        frames.push_back(std::move(f));
        continue;
      }
      // Partially fill the remaining window from a splittable frame.
      const bool splittable =
          f.type == FrameType::kCrypto || f.type == FrameType::kStream;
      if (splittable && window_room > kFrameOverhead + 256) {
        const std::size_t take = window_room - kFrameOverhead;
        std::vector<std::uint8_t> head(
            f.data.begin(), f.data.begin() + static_cast<long>(take));
        Frame piece =
            f.type == FrameType::kCrypto
                ? Frame::crypto(f.offset, std::move(head))
                : Frame::stream(f.stream_id, f.offset, std::move(head),
                                /*fin=*/false);
        f.data.erase(f.data.begin(),
                     f.data.begin() + static_cast<long>(take));
        f.offset += take;
        frames.push_back(std::move(piece));
        window_room = 0;
      }
      deferred.push_back(std::move(f));
    }
    pending.frames = std::move(deferred);
    pending.ack_only = pending.frames.empty();
    if (frames.empty()) continue;

    std::size_t fi = 0;
    while (fi < frames.size()) {
      const std::size_t room = config_.max_datagram_size - current_size;
      if (room < kPacketOverhead + 48) {
        close_datagram();
        continue;
      }
      QuicPacket packet;
      packet.type = packet_type(space);
      packet.version = version_;
      packet.dcid = remote_cid_;
      packet.scid = local_cid_;
      if (packet.type == PacketType::kInitial && !config_.is_server) {
        packet.token = initial_token_bytes_;
      }
      packet.packet_number = next_pn_[s]++;

      const std::size_t budget =
          room - kPacketOverhead - packet.token.size();
      std::size_t used = 0;
      while (fi < frames.size()) {
        Frame& frame = frames[fi];
        const std::size_t cost = frame.data.size() + frame.token.size() +
                                 frame.reason.size() + kFrameOverhead;
        if (cost <= budget - used) {
          used += cost;
          packet.frames.push_back(std::move(frame));
          ++fi;
          continue;
        }
        // Frame does not fit whole. Data-bearing frames split; everything
        // else moves to the next packet/datagram.
        const bool splittable = frame.type == FrameType::kCrypto ||
                                frame.type == FrameType::kStream;
        const std::size_t data_room =
            (budget - used > kFrameOverhead) ? budget - used - kFrameOverhead
                                             : 0;
        if (!splittable || data_room < 64) break;
        Frame piece;
        std::vector<std::uint8_t> head(frame.data.begin(),
                                       frame.data.begin() +
                                           static_cast<long>(data_room));
        if (frame.type == FrameType::kCrypto) {
          piece = Frame::crypto(frame.offset, std::move(head));
        } else {
          piece = Frame::stream(frame.stream_id, frame.offset,
                                std::move(head), /*fin=*/false);
        }
        frame.data.erase(frame.data.begin(),
                         frame.data.begin() + static_cast<long>(data_room));
        frame.offset += data_room;
        packet.frames.push_back(std::move(piece));
        used = budget;
        break;
      }
      if (packet.frames.empty()) {
        --next_pn_[s];  // nothing went out; recycle the number
        close_datagram();
        continue;
      }
      current_size += encoded_packet_size(packet);
      current.push_back(std::move(packet));
      if (current_size + kPacketOverhead + 48 > config_.max_datagram_size) {
        close_datagram();
      }
    }
  }
  close_datagram();

  if (!datagrams.empty()) send_datagrams(std::move(datagrams));
  in_flush_ = false;
}

void QuicConnection::send_datagrams(
    std::vector<std::vector<QuicPacket>> datagrams) {
  for (auto& packets : datagrams) {
    util::Buffer bytes = encode_datagram(packets, !config_.is_server);
    const std::size_t wire_size = bytes.size() + net::kUdpHeaderBytes;

    if (config_.is_server && !address_validated_) {
      if (wire_size > amplification_budget()) {
        was_amplification_blocked_ = true;
        blocked_datagrams_.push_back(std::move(packets));
        continue;
      }
      unvalidated_sent_ += wire_size;
    }

    // Register retransmittable content.
    for (const QuicPacket& p : packets) {
      const int s = static_cast<int>(space_of(p.type));
      SentPacket sp;
      sp.pn = p.packet_number;
      sp.sent_at = sim_.now();
      sp.ack_eliciting = p.ack_eliciting();
      sp.size = encoded_packet_size(p);
      for (const Frame& f : p.frames) {
        if (f.type == FrameType::kCrypto || f.type == FrameType::kStream ||
            f.type == FrameType::kNewToken ||
            f.type == FrameType::kHandshakeDone ||
            f.type == FrameType::kPing) {
          sp.retransmittable.push_back(f);
        }
      }
      if (sp.ack_eliciting) {
        bytes_in_flight_ += sp.size;
        sent_[s].push_back(std::move(sp));
      }
    }

    bytes_sent_ += wire_size;
    ++datagrams_sent_;
    if (cb_.send_datagram) cb_.send_datagram(std::move(bytes));
  }
  arm_pto();
}

// -------------------------------------------------------------- input path

void QuicConnection::on_datagram(std::span<const std::uint8_t> datagram) {
  if (closed_) return;
  bytes_received_ += datagram.size() + net::kUdpHeaderBytes;
  if (config_.is_server && !address_validated_) {
    unvalidated_received_ += datagram.size() + net::kUdpHeaderBytes;
  }
  touch_idle_timer();

  auto packets = decode_datagram(datagram);
  if (!packets) {
    DOXLAB_DEBUG("undecodable datagram dropped");
    return;
  }

  processing_ = true;
  for (const QuicPacket& p : *packets) {
    process_packet(p);
    if (closed_) {
      processing_ = false;
      return;
    }
  }
  processing_ = false;

  // Amplification budget may have grown: release blocked flights first.
  if (config_.is_server && !blocked_datagrams_.empty()) {
    auto blocked = std::move(blocked_datagrams_);
    blocked_datagrams_.clear();
    send_datagrams(std::move(blocked));
  }
  flush_output();

  if (complete_callback_pending_) {
    complete_callback_pending_ = false;
    if (cb_.on_handshake_complete && info_) cb_.on_handshake_complete(*info_);
  }
}

void QuicConnection::process_packet(const QuicPacket& packet) {
  switch (packet.type) {
    case PacketType::kVersionNegotiation:
      handle_version_negotiation(packet);
      return;
    case PacketType::kRetry:
      handle_retry(packet);
      return;
    default:
      break;
  }

  if (config_.is_server && version_ != packet.version &&
      packet.type == PacketType::kInitial) {
    // First INITIAL pins the connection's version (QuicServer already
    // filtered unsupported ones).
    version_ = packet.version;
  }

  // Rejected or undecidable 0-RTT is dropped without acknowledgement.
  if (packet.type == PacketType::kZeroRtt && config_.is_server &&
      !early_accepted_) {
    return;
  }

  const int s = static_cast<int>(space_of(packet.type));
  if (received_pns_[s].contains(packet.packet_number)) {
    return;  // duplicate delivery (retransmitted datagram); already handled
  }
  received_pns_[s].insert(packet.packet_number);
  if (packet.ack_eliciting()) need_ack_[s] = true;

  if (config_.is_server && packet.type == PacketType::kHandshake) {
    // A HANDSHAKE packet proves the peer owns the address (RFC 9000 §8.1).
    address_validated_ = true;
  }
  if (remote_cid_ == 0 && packet.scid != 0) remote_cid_ = packet.scid;

  process_frames(space_of(packet.type), packet);
}

void QuicConnection::process_frames(PnSpace space, const QuicPacket& packet) {
  for (const Frame& frame : packet.frames) {
    switch (frame.type) {
      case FrameType::kAck:
        handle_ack(space, frame);
        break;
      case FrameType::kCrypto: {
        auto& crypto = crypto_[static_cast<int>(space)];
        if (frame.offset + frame.data.size() > crypto.recv_consumed) {
          crypto.recv_buffer.emplace(frame.offset, frame.data);
        }
        process_crypto_stream(space);
        break;
      }
      case FrameType::kStream:
        handle_stream_frame(frame);
        break;
      case FrameType::kNewToken: {
        auto token = AddressToken::decode(frame.token);
        if (token && cb_.on_new_token) cb_.on_new_token(*token);
        break;
      }
      case FrameType::kHandshakeDone:
        break;  // informational in the model
      case FrameType::kConnectionClose: {
        closed_ = true;
        pto_timer_.cancel();
        idle_timer_.cancel();
        // Error code 0 with no reason is a clean application shutdown;
        // anything else is a peer-signalled transport error.
        notify_closed(frame.error_code == 0 && frame.reason.empty()
                          ? util::Error::none()
                          : util::Error::quic_transport(frame.reason));
        return;
      }
      case FrameType::kPing:
      case FrameType::kPadding:
        break;
    }
    if (closed_) return;
  }
}

void QuicConnection::process_crypto_stream(PnSpace space) {
  auto& crypto = crypto_[static_cast<int>(space)];
  // Drain contiguous bytes into the assembled buffer.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = crypto.recv_buffer.begin();
         it != crypto.recv_buffer.end();) {
      const std::uint64_t start = it->first;
      const std::uint64_t end = start + it->second.size();
      if (end <= crypto.recv_consumed) {
        it = crypto.recv_buffer.erase(it);
        continue;
      }
      if (start <= crypto.recv_consumed) {
        const std::size_t skip =
            static_cast<std::size_t>(crypto.recv_consumed - start);
        crypto.assembled.insert(crypto.assembled.end(),
                                it->second.begin() + skip, it->second.end());
        crypto.recv_consumed = end;
        it = crypto.recv_buffer.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
  }

  // Parse complete TLS messages: [type u8][len u24][body].
  while (crypto.assembled.size() >= 4) {
    const std::size_t body_len =
        (std::size_t(crypto.assembled[1]) << 16) |
        (std::size_t(crypto.assembled[2]) << 8) | crypto.assembled[3];
    if (crypto.assembled.size() < 4 + body_len) return;
    std::span<const std::uint8_t> message(crypto.assembled.data(),
                                          4 + body_len);
    auto msg = tls_wire_.parse_handshake(message, /*encrypted=*/false);
    if (!msg) {
      fail(util::Error::protocol("malformed CRYPTO message"));
      return;
    }
    handle_tls_message(space, *msg);
    if (closed_) return;
    crypto.assembled.erase(crypto.assembled.begin(),
                           crypto.assembled.begin() + 4 + body_len);
  }
}

void QuicConnection::handle_tls_message(PnSpace space,
                                        const tls::HandshakeMessage& msg) {
  using tls::HandshakeType;
  if (config_.is_server) {
    switch (msg.type) {
      case HandshakeType::kClientHello:
        if (!msg.client_hello) return fail(util::Error::protocol("CH without payload"));
        if (space != PnSpace::kInitial) return fail(util::Error::protocol("CH outside Initial"));
        server_respond_to_client_hello(*msg.client_hello);
        break;
      case HandshakeType::kFinished: {
        if (complete_) break;
        // Client Finished: handshake done; emit 1-RTT post-handshake frames.
        complete_handshake();
        queue_frame(PnSpace::kAppData, Frame::handshake_done());
        if (config_.enable_session_tickets) {
          tls::SessionTicket ticket;
          ticket.server_secret = config_.ticket_secret;
          ticket.ticket_id = next_ticket_id_++;
          ticket.issued_at = sim_.now();
          ticket.lifetime = 7 * kDay;
          ticket.allow_early_data = config_.enable_0rtt;
          ticket.version = tls::TlsVersion::kTls13;
          ticket.alpn = negotiated_alpn_;
          queue_crypto(PnSpace::kAppData,
                       tls_wire_.new_session_ticket_message(ticket));
        }
        if (config_.send_new_token) {
          AddressToken token;
          token.server_secret = config_.ticket_secret;
          token.client_ip = config_.peer_ip;
          token.issued_at = sim_.now();
          queue_frame(PnSpace::kAppData, Frame::new_token(token.encode()));
        }
        break;
      }
      default:
        break;
    }
    return;
  }

  // Client side.
  switch (msg.type) {
    case HandshakeType::kServerHello:
      if (!msg.server_hello) return fail(util::Error::protocol("SH without payload"));
      resumed_ = msg.server_hello->psk_accepted;
      break;
    case HandshakeType::kEncryptedExtensions: {
      if (!msg.encrypted_extensions) return fail(util::Error::protocol("EE without payload"));
      negotiated_alpn_ = msg.encrypted_extensions->alpn;
      early_accepted_ = msg.encrypted_extensions->early_data_accepted &&
                        sent_early_data_;
      if (sent_early_data_ && !early_accepted_) {
        // 0-RTT rejected: the server never processed (nor will acknowledge)
        // the 0-RTT packets — forget them and resend post-handshake.
        auto& appdata = sent_[static_cast<int>(PnSpace::kAppData)];
        for (auto& sp : appdata) {
          bytes_in_flight_ -= std::min(bytes_in_flight_, sp.size);
          for (auto& f : sp.retransmittable) {
            if (f.type == FrameType::kStream) {
              queue_frame(PnSpace::kAppData, f);
            }
          }
        }
        appdata.clear();
      }
      break;
    }
    case HandshakeType::kCertificate:
    case HandshakeType::kCertificateVerify:
      break;
    case HandshakeType::kFinished: {
      if (complete_) break;
      // Server Finished: send our Finished and complete.
      queue_crypto(PnSpace::kHandshake, tls_wire_.finished_message());
      complete_handshake();
      break;
    }
    case HandshakeType::kNewSessionTicket:
      if (!msg.new_session_ticket) return fail(util::Error::protocol("NST without payload"));
      if (cb_.on_new_ticket) cb_.on_new_ticket(msg.new_session_ticket->ticket);
      break;
    default:
      break;
  }
}

void QuicConnection::server_respond_to_client_hello(
    const tls::ClientHello& ch) {
  if (!negotiated_alpn_.empty() || complete_) return;  // duplicate CH

  // ALPN.
  for (const auto& proto : ch.alpn) {
    if (std::find(config_.alpn.begin(), config_.alpn.end(), proto) !=
        config_.alpn.end()) {
      negotiated_alpn_ = proto;
      break;
    }
  }
  if (negotiated_alpn_.empty()) {
    queue_frame(PnSpace::kInitial,
                Frame::connection_close(0x178, "no application protocol"));
    flush_output();
    fail(util::Error::tls_alert("no ALPN overlap"));
    return;
  }

  // Resumption / 0-RTT.
  resumed_ = ch.psk && ch.psk->server_secret == config_.ticket_secret &&
             ch.psk->valid_at(sim_.now());
  early_accepted_ = resumed_ && ch.early_data && config_.enable_0rtt &&
                    ch.psk->allow_early_data;

  tls::ServerHello sh;
  sh.version = tls::TlsVersion::kTls13;
  sh.psk_accepted = resumed_;
  queue_crypto(PnSpace::kInitial, tls_wire_.server_hello_message(sh));

  tls::EncryptedExtensions ee;
  ee.alpn = negotiated_alpn_;
  ee.early_data_accepted = early_accepted_;
  queue_crypto(PnSpace::kHandshake,
               tls_wire_.encrypted_extensions_message(ee));
  if (!resumed_) {
    queue_crypto(PnSpace::kHandshake,
                 tls_wire_.certificate_message(config_.certificate_chain_size));
    queue_crypto(PnSpace::kHandshake, tls_wire_.certificate_verify_message());
  }
  queue_crypto(PnSpace::kHandshake, tls_wire_.finished_message());
}

void QuicConnection::complete_handshake() {
  if (complete_) return;
  complete_ = true;
  QuicHandshakeInfo info = pending_info_;
  info.version = version_;
  info.alpn = negotiated_alpn_;
  info.resumed = resumed_;
  info.early_data_accepted = early_accepted_;
  info.amplification_stall = was_amplification_blocked_;
  info_ = info;
  // Defer the user callback until the completing flight has been flushed,
  // so byte counters observed inside it include the final handshake bytes.
  complete_callback_pending_ = true;

  // Client: flush streams that did not ride 0-RTT.
  if (!config_.is_server && !early_accepted_) {
    for (auto& qs : queued_streams_) {
      Stream& stream = streams_[qs.id];
      if (stream.send_offset > 0 || stream.send_fin) continue;  // 0-RTT path
      const std::size_t len = qs.data.size();
      queue_frame(PnSpace::kAppData,
                  Frame::stream(qs.id, 0, std::move(qs.data), qs.fin));
      stream.send_offset = len;
      stream.send_fin = qs.fin;
    }
  }
  queued_streams_.clear();
}

void QuicConnection::handle_stream_frame(const Frame& frame) {
  Stream& stream = streams_[frame.stream_id];
  if (frame.fin) {
    stream.fin_offset = frame.offset + frame.data.size();
  }
  if (frame.offset + frame.data.size() > stream.recv_consumed ||
      (frame.fin && !stream.fin_delivered && frame.data.empty())) {
    stream.recv_buffer.emplace(frame.offset,
                               std::make_pair(frame.data, frame.fin));
  }

  // Deliver in order.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = stream.recv_buffer.begin();
         it != stream.recv_buffer.end();) {
      const std::uint64_t start = it->first;
      const std::uint64_t end = start + it->second.first.size();
      if (end < stream.recv_consumed ||
          (end == stream.recv_consumed && !it->second.second)) {
        it = stream.recv_buffer.erase(it);
        continue;
      }
      if (start <= stream.recv_consumed) {
        const std::size_t skip =
            static_cast<std::size_t>(stream.recv_consumed - start);
        std::span<const std::uint8_t> fresh(it->second.first.data() + skip,
                                            it->second.first.size() - skip);
        stream.recv_consumed = end;
        const bool fin_now =
            it->second.second ||
            (stream.fin_offset && *stream.fin_offset == end);
        if (cb_.on_stream_data && (!fresh.empty() || !stream.fin_delivered)) {
          if (fin_now) stream.fin_delivered = true;
          cb_.on_stream_data(frame.stream_id, fresh, fin_now);
        }
        it = stream.recv_buffer.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
  }
}

void QuicConnection::handle_version_negotiation(const QuicPacket& packet) {
  if (config_.is_server || complete_ ||
      pending_info_.used_version_negotiation) {
    return;
  }
  // Pick our most preferred version the server also supports.
  std::optional<QuicVersion> chosen;
  for (QuicVersion mine : config_.supported) {
    for (QuicVersion theirs : packet.supported_versions) {
      if (mine == theirs) {
        chosen = mine;
        break;
      }
    }
    if (chosen) break;
  }
  if (!chosen) {
    fail(util::Error::quic_transport("no common QUIC version"));
    return;
  }
  pending_info_.used_version_negotiation = true;
  version_ = *chosen;

  // Restart the handshake from scratch with the new version.
  for (int s = 0; s < kNumPnSpaces; ++s) {
    sent_[s].clear();
    pending_[s] = PendingSpace{};
    crypto_[s] = CryptoStream{};
    need_ack_[s] = false;
    received_pns_[s].clear();
  }
  bytes_in_flight_ = 0;
  for (auto& [id, stream] : streams_) stream = Stream{};
  sent_early_data_ = false;
  send_client_initial();
}

void QuicConnection::handle_retry(const QuicPacket& packet) {
  if (config_.is_server || complete_ || pending_info_.used_retry) return;
  pending_info_.used_retry = true;
  initial_token_bytes_ = packet.token;

  // Resend the first flight with the Retry token (RFC 9000 §8.1.2).
  for (int s = 0; s < kNumPnSpaces; ++s) {
    sent_[s].clear();
    pending_[s] = PendingSpace{};
    crypto_[s] = CryptoStream{};
    need_ack_[s] = false;
    received_pns_[s].clear();
  }
  bytes_in_flight_ = 0;
  for (auto& [id, stream] : streams_) stream = Stream{};
  sent_early_data_ = false;  // send_client_initial re-evaluates 0-RTT
  send_client_initial();
}

// ----------------------------------------------------------- loss recovery

void QuicConnection::handle_ack(PnSpace space, const Frame& ack) {
  if (ack.ack_ranges.empty()) return;
  const std::uint64_t largest = ack.ack_ranges.front().last;
  auto& sent = sent_[static_cast<int>(space)];
  bool newly_acked = false;
  std::size_t acked_bytes = 0;
  std::uint64_t newest_pn = 0;
  SimTime newest_sent_at = sim_.now();
  for (auto it = sent.begin(); it != sent.end();) {
    if (ack.acks(it->pn)) {
      if (it->pn == largest) update_rtt(sim_.now() - it->sent_at);
      if (!newly_acked || it->pn >= newest_pn) {
        newest_pn = it->pn;
        newest_sent_at = it->sent_at;
      }
      acked_bytes += it->size;
      bytes_in_flight_ -= std::min(bytes_in_flight_, it->size);
      it = sent.erase(it);
      newly_acked = true;
    } else {
      ++it;
    }
  }
  if (newly_acked) {
    pto_backoff_ = 0;
    if (config_.enable_cc) {
      cc_.on_ack(acked_bytes, newest_sent_at, sim_.now());
      detect_losses(space, largest);
    }
    arm_pto();
  }
}

void QuicConnection::detect_losses(PnSpace space, std::uint64_t largest_acked) {
  // RFC 9002 §6.1.1 packet-threshold detection: everything still unacked
  // with pn <= largest_acked - kPacketThreshold is declared lost — its
  // frames requeue for the next flush, and the controller takes one window
  // reduction per recovery episode (keyed on send time).
  if (largest_acked < kPacketThreshold) return;
  const std::uint64_t lost_up_to = largest_acked - kPacketThreshold;
  auto& sent = sent_[static_cast<int>(space)];
  for (auto it = sent.begin(); it != sent.end();) {
    if (it->pn <= lost_up_to) {
      ++packets_lost_;
      bytes_in_flight_ -= std::min(bytes_in_flight_, it->size);
      cc_.on_loss(it->sent_at, sim_.now());
      for (auto& f : it->retransmittable) {
        queue_frame(space, std::move(f));
      }
      it = sent.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<AckRange> QuicConnection::build_ack_ranges(PnSpace space) const {
  const auto& pns = received_pns_[static_cast<int>(space)];
  std::vector<AckRange> ranges;  // built ascending, then reversed
  for (std::uint64_t pn : pns) {
    if (!ranges.empty() && ranges.back().last + 1 == pn) {
      ranges.back().last = pn;
    } else {
      ranges.push_back(AckRange{pn, pn});
    }
  }
  std::reverse(ranges.begin(), ranges.end());
  return ranges;
}

void QuicConnection::update_rtt(SimTime sample) {
  if (!srtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const SimTime err = std::abs(*srtt_ - sample);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * *srtt_ + sample) / 8;
  }
}

SimTime QuicConnection::current_pto() const {
  SimTime base = srtt_ ? (*srtt_ + std::max<SimTime>(4 * rttvar_, 1000) +
                          25 * kMillisecond)
                       : config_.initial_pto;
  return base << std::min(pto_backoff_, 10);
}

void QuicConnection::arm_pto() {
  pto_timer_.cancel();
  bool in_flight = false;
  for (int s = 0; s < kNumPnSpaces; ++s) {
    if (!sent_[s].empty()) {
      in_flight = true;
      break;
    }
  }
  if (!in_flight || closed_) return;
  auto self = weak_from_this();
  pto_timer_ = sim_.schedule(current_pto(), [self] {
    if (auto conn = self.lock()) conn->on_pto();
  });
}

void QuicConnection::on_pto() {
  if (closed_) return;
  ++pto_backoff_;
  ++total_ptos_;
  if (pto_backoff_ > config_.max_pto_count) {
    fail(util::Error::timeout("QUIC handshake/transfer timed out"));
    return;
  }
  if (config_.enable_cc) {
    // A timeout collapses the window and restarts slow start; a second
    // consecutive PTO with no ack in between is the model's persistent
    // congestion signal (RFC 9002 §7.6).
    if (pto_backoff_ >= 2) {
      cc_.on_persistent_congestion(sim_.now());
    } else {
      cc_.on_rto(sim_.now());
    }
  }
  // Retransmit all unacknowledged retransmittable frames as fresh packets.
  bool queued_any = false;
  for (int s = 0; s < kNumPnSpaces; ++s) {
    auto sent = std::move(sent_[s]);
    sent_[s].clear();
    for (auto& sp : sent) {
      for (auto& f : sp.retransmittable) {
        queue_frame(static_cast<PnSpace>(s), std::move(f));
        queued_any = true;
      }
    }
  }
  bytes_in_flight_ = 0;
  if (!queued_any) {
    // Nothing retransmittable (e.g. only ACK-eliciting PINGs already gone):
    // probe with a PING in the highest active space.
    queue_frame(complete_ ? PnSpace::kAppData : PnSpace::kInitial,
                Frame::ping());
  }
  flush_output();
}

}  // namespace doxlab::quic
