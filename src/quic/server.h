// QUIC server socket: demultiplexes datagrams to per-peer connections and
// performs the stateless first-packet duties — Version Negotiation for
// unsupported versions (what the paper's ZMap scan elicits with its
// version-0 probe) and Retry-based address validation when configured.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/udp.h"
#include "quic/connection.h"
#include "sim/simulator.h"

namespace doxlab::quic {

class QuicServer {
 public:
  /// Invoked when a new connection is created, before its first packet is
  /// processed — attach stream/handshake callbacks here.
  using AcceptHandler = std::function<void(
      const std::shared_ptr<QuicConnection>&, const net::Endpoint& peer)>;

  /// Binds `port` on `stack`'s host. `config` is the per-connection server
  /// configuration (is_server is forced).
  QuicServer(sim::Simulator& sim, net::UdpStack& stack, std::uint16_t port,
             QuicConfig config);

  void on_accept(AcceptHandler handler) { on_accept_ = std::move(handler); }

  /// Live connection count (diagnostics).
  std::size_t connection_count() const { return connections_.size(); }

  /// Stateless Version Negotiation responses sent (the scanner counts
  /// these).
  std::uint64_t version_negotiations_sent() const { return vn_sent_; }
  std::uint64_t retries_sent() const { return retry_sent_; }

  const QuicConfig& config() const { return config_; }
  QuicConfig& mutable_config() { return config_; }

 private:
  void on_datagram(const net::Endpoint& from,
                   util::Buffer payload);
  bool version_supported(QuicVersion v) const;

  sim::Simulator& sim_;
  std::unique_ptr<net::UdpSocket> socket_;
  QuicConfig config_;
  AcceptHandler on_accept_;
  std::unordered_map<net::Endpoint, std::shared_ptr<QuicConnection>>
      connections_;
  std::uint64_t vn_sent_ = 0;
  std::uint64_t retry_sent_ = 0;
};

}  // namespace doxlab::quic
