// Local DNS proxy — the dnsproxy stand-in from the paper's methodology.
//
// Chromium is configured with a localhost DoUDP resolver; this proxy
// receives those stub queries and forwards them to the upstream DoX
// resolver over the protocol under test. Per the paper:
//   * the proxy's local cache is disabled (every browser query reaches the
//     upstream resolver),
//   * sessions are reset between the cache-warming navigation and the
//     measured navigation (tickets/tokens survive; connections do not),
//   * DoT suffers the connection-handling bug (new connection while a
//     query is in flight) unless the fixed behaviour is requested.
#pragma once

#include <memory>
#include <unordered_map>

#include "dns/cache.h"
#include "dox/transport.h"
#include "net/udp.h"

namespace doxlab::proxy {

struct ProxyConfig {
  /// Protocol used towards the upstream resolver.
  dox::DnsProtocol upstream_protocol = dox::DnsProtocol::kDoUdp;
  /// The upstream resolver endpoint.
  net::Endpoint upstream;
  /// Local port the stub listener binds (Chromium points at this).
  std::uint16_t listen_port = 53;
  /// Local answer cache — disabled in the study.
  bool cache_enabled = false;
  /// Options passed to the upstream transport (session resumption, the DoT
  /// reuse bug, 0-RTT, ...).
  dox::TransportOptions transport_options;
};

class DnsProxy {
 public:
  /// Binds the stub listener on `stub_udp` (the client machine's stack) and
  /// creates the upstream transport from `deps`.
  DnsProxy(sim::Simulator& sim, net::UdpStack& stub_udp,
           const dox::TransportDeps& upstream_deps, ProxyConfig config);

  DnsProxy(const DnsProxy&) = delete;
  DnsProxy& operator=(const DnsProxy&) = delete;

  /// Drops upstream connections (keeps tickets/tokens) — the "all sessions
  /// of DNS Proxy are reset" step of the methodology.
  void reset_sessions();

  /// Clears the local cache (no-op when disabled).
  void clear_cache() { cache_.clear(); }

  const ProxyConfig& config() const { return config_; }
  std::uint64_t queries_forwarded() const { return forwarded_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  /// Upstream failures answered with SERVFAIL — the web study's failure
  /// rate.
  std::uint64_t servfails_sent() const { return servfails_sent_; }

  /// Wire stats of the upstream transport (diagnostics).
  dox::WireStats upstream_wire_stats() const {
    return transport_->wire_stats();
  }

 private:
  void on_stub_query(const net::Endpoint& from,
                     util::Buffer payload);

  sim::Simulator& sim_;
  ProxyConfig config_;
  std::unique_ptr<net::UdpSocket> listener_;
  std::unique_ptr<dox::DnsTransport> transport_;
  dns::Cache cache_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t servfails_sent_ = 0;
};

}  // namespace doxlab::proxy
