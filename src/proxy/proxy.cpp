#include "proxy/proxy.h"

#include "util/logging.h"

namespace doxlab::proxy {

DnsProxy::DnsProxy(sim::Simulator& sim, net::UdpStack& stub_udp,
                   const dox::TransportDeps& upstream_deps,
                   ProxyConfig config)
    : sim_(sim), config_(std::move(config)) {
  dox::TransportOptions options = config_.transport_options;
  options.resolver = config_.upstream;
  transport_ = dox::make_transport(config_.upstream_protocol, upstream_deps,
                                   options);
  listener_ = stub_udp.bind(config_.listen_port);
  listener_->on_datagram([this](const net::Endpoint& from,
                                util::Buffer payload) {
    on_stub_query(from, std::move(payload));
  });
}

void DnsProxy::reset_sessions() { transport_->reset_sessions(); }

void DnsProxy::on_stub_query(const net::Endpoint& from,
                             util::Buffer payload) {
  auto query = dns::Message::decode(payload);
  if (!query || query->qr || query->questions.empty()) return;
  const dns::Question question = query->questions.front();
  const std::uint16_t stub_id = query->id;

  if (config_.cache_enabled) {
    if (auto cached = cache_.lookup(question.name, question.type,
                                    sim_.now())) {
      ++cache_hits_;
      dns::Message response = dns::make_response(*query);
      response.answers = std::move(*cached);
      listener_->send_to(from, response.encode());
      return;
    }
  }

  ++forwarded_;
  transport_->resolve(
      question, [this, from, stub_id, question](dox::QueryResult result) {
        if (!result.ok()) {
          DOXLAB_DEBUG("proxy upstream failure: " << result.error());
          // Real dnsproxy would eventually SERVFAIL; the stub's own
          // timeout/retry handles it either way. Send SERVFAIL for
          // determinism.
          ++servfails_sent_;
          dns::Message servfail;
          servfail.id = stub_id;
          servfail.qr = true;
          servfail.ra = true;
          servfail.rcode = dns::RCode::kServFail;
          servfail.questions = {question};
          listener_->send_to(from, servfail.encode());
          return;
        }
        if (config_.cache_enabled) {
          cache_.insert(question.name, question.type, result.response.answers,
                        sim_.now());
        }
        dns::Message response = result.response;
        response.id = stub_id;  // restore the stub's transaction id
        listener_->send_to(from, response.encode());
      });
}

}  // namespace doxlab::proxy
