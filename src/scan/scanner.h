// ZMap-style resolver discovery (the paper's §2 methodology):
//
//   1. Probe candidate IPv4 addresses on UDP 784/853/8853 with a QUIC
//      INITIAL carrying an unsupported version. Hosts that answer with a
//      Version Negotiation packet run QUIC on that port — no connection
//      state is created on the target.
//   2. Verify DoQ by completing a handshake offering the DoQ ALPN set.
//   3. Probe the other four protocols DNSPerf-style (an A query each).
//   4. Intersect: resolvers supporting all five are the "verified DoX" set.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "dox/transport.h"
#include "net/network.h"
#include "net/udp.h"
#include "scan/population.h"

namespace doxlab::scan {

struct ScanConfig {
  /// Ports probed for QUIC (the proposed DoQ ports).
  std::vector<std::uint16_t> ports = {784, 853, 8853};
  /// How long to wait for a VN answer per probe wave.
  SimTime probe_timeout = 2 * kSecond;
  /// Extra dark (unassigned) addresses probed per live target, to exercise
  /// the no-answer path like a real internet-wide scan.
  int dark_addresses_per_target = 2;
};

struct ScanReport {
  std::uint64_t addresses_probed = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t vn_responses = 0;

  /// Addresses answering the QUIC version probe on any port.
  std::vector<net::IpAddress> quic_hosts;
  /// Hosts completing a DoQ-ALPN handshake.
  std::vector<net::IpAddress> doq_resolvers;
  /// Per-protocol support counts among DoQ resolvers.
  int doudp = 0;
  int dotcp = 0;
  int dot = 0;
  int doh = 0;
  /// Resolvers supporting all five protocols.
  std::vector<net::IpAddress> verified_dox;
};

class Ipv4Scanner {
 public:
  /// `scan_host` is the single scanning vantage point (the paper used one
  /// machine at TUM).
  Ipv4Scanner(net::Network& network, net::Host& scan_host, ScanConfig config);

  /// Runs the full pipeline against `candidates` (synthetic "address
  /// space"). Blocks the simulator until complete.
  ScanReport run(const std::vector<net::IpAddress>& candidates);

 private:
  /// Phase 1: VN probing. Returns address -> first answering port.
  std::map<net::IpAddress, std::uint16_t> probe_versions(
      const std::vector<net::IpAddress>& candidates, ScanReport& report);
  /// Phase 2: DoQ ALPN verification.
  std::vector<net::IpAddress> verify_doq(
      const std::map<net::IpAddress, std::uint16_t>& quic_hosts);
  /// Phase 3/4: per-protocol support probing and intersection.
  void probe_support(const std::vector<net::IpAddress>& doq_hosts,
                     ScanReport& report);

  net::Network& network_;
  net::Host& host_;
  net::UdpStack udp_;
  tcp::TcpStack tcp_;
  ScanConfig config_;
};

}  // namespace doxlab::scan
