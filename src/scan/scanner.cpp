#include "scan/scanner.h"

#include "quic/connection.h"
#include "quic/wire.h"
#include "tls/ticket.h"
#include "util/logging.h"

namespace doxlab::scan {

namespace {
/// An intentionally unsupported QUIC version ("greased", like the paper's
/// version-0 probe): every spec-conforming server answers with Version
/// Negotiation and keeps no state.
constexpr std::uint32_t kProbeVersion = 0x1A2A3A4A;
}  // namespace

Ipv4Scanner::Ipv4Scanner(net::Network& network, net::Host& scan_host,
                         ScanConfig config)
    : network_(network), host_(scan_host), udp_(scan_host), tcp_(scan_host),
      config_(std::move(config)) {}

std::map<net::IpAddress, std::uint16_t> Ipv4Scanner::probe_versions(
    const std::vector<net::IpAddress>& candidates, ScanReport& report) {
  auto& sim = network_.simulator();
  std::map<net::IpAddress, std::uint16_t> responders;

  auto socket = udp_.bind_ephemeral();
  socket->on_datagram([&](const net::Endpoint& from,
                          util::Buffer payload) {
    auto packets = quic::decode_datagram(payload);
    if (!packets || packets->empty()) return;
    if ((*packets)[0].type != quic::PacketType::kVersionNegotiation) return;
    ++report.vn_responses;
    responders.try_emplace(from.address, from.port);
  });

  // One INITIAL probe per (address, port), minimally padded like ZMap's
  // stateless probes.
  for (net::IpAddress address : candidates) {
    ++report.addresses_probed;
    for (std::uint16_t port : config_.ports) {
      quic::QuicPacket probe;
      probe.type = quic::PacketType::kInitial;
      probe.version = static_cast<quic::QuicVersion>(kProbeVersion);
      probe.dcid = 0xF00D;
      probe.scid = 0xBEEF;
      probe.frames.push_back(quic::Frame::crypto(0, {0}));
      std::vector<quic::QuicPacket> packets = {probe};
      ++report.probes_sent;
      socket->send_to(net::Endpoint{address, port},
                      quic::encode_datagram(packets, true));
    }
  }
  sim.run_until(sim.now() + config_.probe_timeout);
  return responders;
}

std::vector<net::IpAddress> Ipv4Scanner::verify_doq(
    const std::map<net::IpAddress, std::uint16_t>& quic_hosts) {
  auto& sim = network_.simulator();
  std::vector<net::IpAddress> verified;

  for (const auto& [address, port] : quic_hosts) {
    // Attempt a real handshake offering the DoQ ALPN set. Servers that run
    // QUIC but not DoQ would fail ALPN negotiation.
    bool ok = false;
    bool done = false;
    auto socket = udp_.bind_ephemeral();

    quic::QuicConfig config;
    config.alpn = {"doq", "doq-i11", "doq-i10", "doq-i09", "doq-i08",
                   "doq-i07", "doq-i06", "doq-i05", "doq-i04", "doq-i03",
                   "doq-i02", "doq-i01", "doq-i00"};
    config.sni = "scan-" + address.to_string();

    quic::QuicConnection::Callbacks callbacks;
    callbacks.send_datagram = [&socket, endpoint = net::Endpoint{address,
                                                                 port}](
                                  util::Buffer bytes) {
      socket->send_to(endpoint, std::move(bytes));
    };
    callbacks.on_handshake_complete = [&](const quic::QuicHandshakeInfo&) {
      ok = true;
      done = true;
    };
    callbacks.on_closed = [&](const util::Error&) { done = true; };
    auto conn = quic::QuicConnection::make_client(sim, config,
                                                  std::move(callbacks));
    socket->on_datagram([conn](const net::Endpoint&,
                               util::Buffer payload) {
      conn->on_datagram(payload);
    });
    conn->connect();
    const SimTime deadline = sim.now() + 6 * kSecond;
    while (!done && sim.now() < deadline) {
      if (!sim.step()) sim.run_until(deadline);
    }
    conn->close();
    sim.run_until(sim.now() + 100 * kMillisecond);
    if (ok) verified.push_back(address);
  }
  return verified;
}

void Ipv4Scanner::probe_support(const std::vector<net::IpAddress>& doq_hosts,
                                ScanReport& report) {
  auto& sim = network_.simulator();
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;

  dox::TransportDeps deps;
  deps.sim = &sim;
  deps.udp = &udp_;
  deps.tcp = &tcp_;
  deps.tickets = &tickets;
  deps.doq_cache = &doq_cache;

  const dns::Question question{dns::DnsName::parse("example.com"),
                               dns::RRType::kA, dns::RRClass::kIN};

  for (net::IpAddress address : doq_hosts) {
    bool support[4] = {false, false, false, false};
    const dox::DnsProtocol protocols[4] = {
        dox::DnsProtocol::kDoUdp, dox::DnsProtocol::kDoTcp,
        dox::DnsProtocol::kDoT, dox::DnsProtocol::kDoH};
    for (int i = 0; i < 4; ++i) {
      dox::TransportOptions options;
      options.resolver = net::Endpoint{address, dox::default_port(protocols[i])};
      options.query_timeout = 8 * kSecond;
      auto transport = dox::make_transport(protocols[i], deps, options);
      bool done = false;
      transport->resolve(question, [&, i](dox::QueryResult result) {
        support[i] = result.ok();
        done = true;
      });
      const SimTime deadline = sim.now() + 10 * kSecond;
      while (!done && sim.now() < deadline) {
        if (!sim.step()) sim.run_until(deadline);
      }
      transport->reset_sessions();
      sim.run_until(sim.now() + 100 * kMillisecond);
    }
    if (support[0]) ++report.doudp;
    if (support[1]) ++report.dotcp;
    if (support[2]) ++report.dot;
    if (support[3]) ++report.doh;
    if (support[0] && support[1] && support[2] && support[3]) {
      report.verified_dox.push_back(address);
    }
  }
}

ScanReport Ipv4Scanner::run(const std::vector<net::IpAddress>& candidates) {
  ScanReport report;
  auto responders = probe_versions(candidates, report);
  for (const auto& [address, port] : responders) {
    report.quic_hosts.push_back(address);
  }
  report.doq_resolvers = verify_doq(responders);
  probe_support(report.doq_resolvers, report);
  return report;
}

}  // namespace doxlab::scan
