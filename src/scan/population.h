// Resolver population builder.
//
// Constructs the study's server-side world to match what the paper found:
//   * 1,216 DoQ-capable resolvers in total,
//   * per-protocol support among them: DoUDP 548, DoTCP 706, DoT 1,149,
//     DoH 732,
//   * 313 "verified DoX" resolvers supporting all five protocols,
//   * verified resolvers per continent: EU 130, AS 128, NA 49, AF/OC/SA 2,
//   * 107 autonomous systems: ORACLE 47, DIGITALOCEAN 20, MNGTNET 18,
//     OVHCLOUD 16, rest <= 12 each,
//   * feature mix (§3): QUIC v1 89.1% / d34 8.5% / d32 1.8% / d29 0.6%;
//     ALPN doq-i02 87.4% / doq-i03 10.8% / doq-i00 1.8%; TLS 1.3 ~99%;
//     no 0-RTT, no TFO, no edns-tcp-keepalive; session tickets everywhere.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/network.h"
#include "resolver/resolver.h"
#include "util/rng.h"

namespace doxlab::scan {

struct PopulationConfig {
  /// Number of fully-verified DoX resolvers (the paper's 313). The other
  /// DoQ resolvers scale proportionally (x 1216/313) unless overridden.
  int verified_dox = 313;
  /// Total DoQ-capable resolvers, absolute (paper: 1,216). Must be >=
  /// verified_dox; the difference becomes partial-support resolvers.
  /// Scale this together with verified_dox (e.g. verified 80 -> total 311).
  int total_doq = 1216;
  /// Build only the verified set (web/single-query studies don't need the
  /// partial-support population).
  bool verified_only = false;
  /// Base of the address range resolvers are placed in.
  std::uint32_t base_address = 0x0A800000;  // 10.128.0.0

  // Ablation overrides (nullopt = the paper's observed behaviour).
  std::optional<bool> force_supports_0rtt;
  std::optional<bool> force_supports_tfo;
  std::optional<bool> force_supports_keepalive;
  std::optional<bool> force_validate_with_retry;
  /// Enable DNS-over-HTTP/3 listeners across the population (future work).
  std::optional<bool> force_supports_doh3;
};

/// The built world: resolver instances (owning their hosts/listeners).
struct Population {
  std::vector<std::unique_ptr<resolver::DoxResolver>> resolvers;

  /// Indices of the verified (all-five-protocols) resolvers.
  std::vector<std::size_t> verified;

  /// Count of verified resolvers on a continent.
  int verified_on(net::Continent c) const;
};

/// Builds resolver profiles + instances on `network`.
Population build_population(net::Network& network, const PopulationConfig& cfg,
                            Rng& rng);

/// The paper's per-continent verified counts, used by the builder and
/// checked by tests: EU 130, AS 128, NA 49, AF 2, OC 2, SA 2 (sums to 313).
const std::vector<std::pair<net::Continent, int>>& verified_continent_quota();

}  // namespace doxlab::scan
