#include "scan/population.h"

#include <algorithm>
#include <cmath>

namespace doxlab::scan {

namespace {

/// AS names: the four the paper names explicitly, plus filler ASes.
struct AsQuota {
  const char* name;
  int asn;
  int verified_count;  // how many of the 313
};

std::vector<AsQuota> as_quotas() {
  // ORACLE 47 (15.0%), DIGITALOCEAN 20 (6.4%), MNGTNET 18 (5.8%),
  // OVHCLOUD 16 (5.1%); the remaining 212 spread over 103 ASes (<= 12 each).
  std::vector<AsQuota> quotas = {
      {"ORACLE", 31898, 47},
      {"DIGITALOCEAN", 14061, 20},
      {"MNGTNET", 50673, 18},
      {"OVHCLOUD", 16276, 16},
  };
  int remaining = 313 - 47 - 20 - 18 - 16;  // 212
  int asn = 64500;
  // 103 further ASes; sizes 12, 12, ... then tapering to 1.
  int index = 0;
  while (remaining > 0) {
    int size = std::max(1, std::min({12, remaining - (102 - index), 3}));
    // Mostly small ASes of 1-3 resolvers with a few larger ones up front.
    if (index < 10) size = std::min(remaining, 8);
    quotas.push_back(
        {"AS-MISC", asn + index, std::min(size, remaining)});
    remaining -= std::min(size, remaining);
    ++index;
  }
  return quotas;
}

quic::QuicVersion draw_quic_version(Rng& rng) {
  const double weights[] = {89.1, 8.5, 1.8, 0.6};
  switch (rng.weighted_index(weights)) {
    case 0: return quic::QuicVersion::kV1;
    case 1: return quic::QuicVersion::kDraft34;
    case 2: return quic::QuicVersion::kDraft32;
    default: return quic::QuicVersion::kDraft29;
  }
}

std::string draw_doq_alpn(Rng& rng) {
  const double weights[] = {87.4, 10.8, 1.8};
  switch (rng.weighted_index(weights)) {
    case 0: return "doq-i02";
    case 1: return "doq-i03";
    default: return "doq-i00";
  }
}

}  // namespace

const std::vector<std::pair<net::Continent, int>>& verified_continent_quota() {
  static const std::vector<std::pair<net::Continent, int>> kQuota = {
      {net::Continent::kEurope, 130},       {net::Continent::kAsia, 128},
      {net::Continent::kNorthAmerica, 49},  {net::Continent::kAfrica, 2},
      {net::Continent::kOceania, 2},        {net::Continent::kSouthAmerica, 2},
  };
  return kQuota;
}

int Population::verified_on(net::Continent c) const {
  int count = 0;
  for (std::size_t index : verified) {
    if (resolvers[index]->profile().continent == c) ++count;
  }
  return count;
}

Population build_population(net::Network& network, const PopulationConfig& cfg,
                            Rng& rng) {
  Population population;
  const double scale = static_cast<double>(cfg.verified_dox) / 313.0;
  std::uint32_t next_address = cfg.base_address;
  std::uint64_t next_secret = 0xD0C0'0001;

  // AS assignment list for verified resolvers (scaled), consumed from the
  // front so the paper's headline ASes (ORACLE, ...) are represented at
  // every scale.
  std::size_t next_as = 0;
  std::vector<std::pair<std::string, int>> as_pool;
  for (const AsQuota& quota : as_quotas()) {
    const int scaled =
        std::max(1, static_cast<int>(std::lround(quota.verified_count *
                                                 scale)));
    for (int i = 0; i < scaled; ++i) {
      as_pool.emplace_back(quota.name, quota.asn);
    }
  }

  auto make_profile = [&](net::Continent continent,
                          bool verified) -> resolver::ResolverProfile {
    resolver::ResolverProfile profile;
    const auto& cities = net::cities_in(continent);
    const auto& city = cities[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cities.size()) - 1))];
    profile.name = "resolver-" + std::to_string(next_address & 0xFFFFFF);
    profile.address = net::IpAddress(next_address++);
    // Scatter around the hub city.
    profile.location = {city.location.lat_deg + rng.uniform_real(-2.0, 2.0),
                        city.location.lon_deg + rng.uniform_real(-2.0, 2.0)};
    profile.continent = continent;
    profile.secret = next_secret++;
    profile.max_tls = rng.chance(0.99) ? tls::TlsVersion::kTls13
                                       : tls::TlsVersion::kTls12;
    profile.quic_version = draw_quic_version(rng);
    profile.doq_alpn = draw_doq_alpn(rng);
    profile.supports_0rtt = cfg.force_supports_0rtt.value_or(false);
    profile.supports_tfo = cfg.force_supports_tfo.value_or(false);
    profile.supports_keepalive =
        cfg.force_supports_keepalive.value_or(false);
    profile.validate_with_retry =
        cfg.force_validate_with_retry.value_or(false);
    profile.supports_doh3 = cfg.force_supports_doh3.value_or(false);
    profile.session_tickets = true;
    // Chain sizes straddle the 3x-amplification budget (~2.8 KB of
    // certificate next to the rest of the flight) so that a realistic
    // fraction of *full* handshakes stalls — the paper's preliminary-work
    // observation (~40%).
    profile.certificate_chain_size =
        static_cast<std::size_t>(rng.uniform_int(1500, 3800));
    profile.recursive_latency_mean =
        from_ms(rng.uniform_real(40.0, 150.0));
    profile.drop_probability = 0.002;
    if (verified && next_as < as_pool.size()) {
      const auto& [as_name, asn] = as_pool[next_as++];
      profile.as_name = as_name;
      profile.as_number = asn;
    } else {
      profile.as_name = "AS-DOQ-ONLY";
      profile.as_number = 65000 + static_cast<int>(next_secret % 500);
    }
    return profile;
  };

  // Verified resolvers per continent quota (scaled).
  for (const auto& [continent, quota] : verified_continent_quota()) {
    const int scaled = std::max(
        1, static_cast<int>(std::lround(quota * scale)));
    for (int i = 0; i < scaled; ++i) {
      auto profile = make_profile(continent, /*verified=*/true);
      population.verified.push_back(population.resolvers.size());
      population.resolvers.push_back(std::make_unique<resolver::DoxResolver>(
          network, profile, rng.fork()));
    }
  }

  if (!cfg.verified_only) {
    // The remaining DoQ resolvers with partial support. Per-protocol
    // support among the non-verified 903 (at paper scale): DoUDP 235,
    // DoTCP 393, DoT 836, DoH 419.
    const int verified_count =
        static_cast<int>(population.resolvers.size());
    const int extra = std::max(0, cfg.total_doq - verified_count);
    const double p_udp = 235.0 / 903.0;
    const double p_tcp = 393.0 / 903.0;
    const double p_dot = 836.0 / 903.0;
    const double p_doh = 419.0 / 903.0;
    for (int i = 0; i < extra; ++i) {
      // Continent roughly follows the verified distribution.
      const auto& quota = verified_continent_quota();
      double weights[6];
      for (std::size_t c = 0; c < quota.size(); ++c) {
        weights[c] = quota[c].second;
      }
      const auto continent =
          quota[rng.weighted_index(std::span(weights, 6))].first;
      auto profile = make_profile(continent, /*verified=*/false);
      profile.supports_doudp = rng.chance(p_udp);
      profile.supports_dotcp = rng.chance(p_tcp);
      profile.supports_dot = rng.chance(p_dot);
      profile.supports_doh = rng.chance(p_doh);
      // Must not be a full-support resolver (those are the verified 313).
      if (profile.supports_doudp && profile.supports_dotcp &&
          profile.supports_dot && profile.supports_doh) {
        profile.supports_doudp = false;  // DoUDP support is the rarest
      }
      population.resolvers.push_back(std::make_unique<resolver::DoxResolver>(
          network, profile, rng.fork()));
    }
  }

  return population;
}

}  // namespace doxlab::scan
