// Parallel campaign executor.
//
// The paper's measurement campaign — 6 vantage points x hundreds of
// resolvers x 5 protocols x many repetitions — is thousands of independent
// simulations. The campaign runner shards that matrix into one task per
// (repetition, vantage point, resolver, protocol) cell, runs each cell in
// its own Testbed/Simulator on a work-stealing thread pool, and merges the
// per-cell records back in schedule order.
//
// Determinism contract: the output is a pure function of the campaign seed
// and config — never of `jobs`. Each cell's testbed is seeded with
// SplitMix64(campaign seed, cell index), and every cell pins its resolver
// population to the campaign seed so all cells measure the identical
// population while their jitter/loss streams differ.
#pragma once

#include <cstdint>
#include <vector>

#include "measure/single_query.h"
#include "measure/testbed.h"
#include "measure/web_study.h"

namespace doxlab::runner {

/// SplitMix64 of (campaign seed, run index): well-spread, collision-free
/// per-run seeds from a single campaign seed.
std::uint64_t derive_run_seed(std::uint64_t campaign_seed,
                              std::uint64_t run_index);

struct CampaignConfig {
  std::uint64_t seed = 42;
  /// Worker threads (<= 0: one per hardware thread). Never affects output.
  int jobs = 1;
  scan::PopulationConfig population = {.verified_only = true};
  double loss_rate = 0.002;
  /// Optional adverse-path access link for every cell's vantage points
  /// (see TestbedConfig::access_link). Unset keeps the pinned baseline.
  std::optional<net::LinkConfig> access_link;
};

/// Runs the single-query study sharded across the pool. `study`'s
/// repetitions/protocols/max_resolvers define the matrix; its sharding
/// filter fields (only_vp/only_resolver/rep_base) are managed per cell and
/// any caller-set values are ignored.
std::vector<measure::SingleQueryRecord> run_single_query_campaign(
    const CampaignConfig& campaign, const measure::SingleQueryConfig& study);

/// Web-study counterpart: pages and loads-per-combo stay inside each cell
/// (they share the cell's proxy warm-up, as in the serial study).
std::vector<measure::WebRecord> run_web_campaign(
    const CampaignConfig& campaign, const measure::WebStudyConfig& study);

}  // namespace doxlab::runner
