#include "runner/campaign.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "measure/sampling.h"
#include "util/thread_pool.h"

namespace doxlab::runner {

namespace {

/// One cell of the campaign matrix, in serial schedule order.
struct CellSpec {
  int rep;
  int vp;
  std::size_t resolver;  // population index
  dox::DnsProtocol protocol;
};

/// Enumerates cells in the same rep -> vp -> resolver -> protocol order the
/// serial studies sweep, so merged shards reproduce the serial record order.
template <typename StudyConfig>
std::vector<CellSpec> enumerate_cells(const CampaignConfig& campaign,
                                      const StudyConfig& study) {
  // A prototype testbed (campaign-seeded, like every cell) resolves the
  // vantage-point count and the sampled resolver set.
  measure::TestbedConfig proto_config;
  proto_config.seed = campaign.seed;
  proto_config.population_seed = campaign.seed;
  proto_config.population = campaign.population;
  proto_config.loss_rate = campaign.loss_rate;
  // No access_link on the prototype: it only enumerates the matrix.
  measure::Testbed prototype(proto_config);

  const std::vector<std::size_t> resolvers = measure::sample_resolvers(
      prototype.population().verified, study.max_resolvers);
  const int vp_count = static_cast<int>(prototype.vantage_points().size());

  std::vector<CellSpec> cells;
  cells.reserve(static_cast<std::size_t>(std::max(study.repetitions, 0)) *
                static_cast<std::size_t>(vp_count) * resolvers.size() *
                study.protocols.size());
  for (int rep = 0; rep < study.repetitions; ++rep) {
    for (int vp = 0; vp < vp_count; ++vp) {
      for (std::size_t resolver : resolvers) {
        for (dox::DnsProtocol protocol : study.protocols) {
          cells.push_back(CellSpec{rep, vp, resolver, protocol});
        }
      }
    }
  }
  return cells;
}

/// Testbed config for cell `index`: unique run seed, shared population.
measure::TestbedConfig cell_testbed_config(const CampaignConfig& campaign,
                                           std::size_t index) {
  measure::TestbedConfig config;
  config.seed = derive_run_seed(campaign.seed, index);
  config.population_seed = campaign.seed;
  config.population = campaign.population;
  config.loss_rate = campaign.loss_rate;
  config.access_link = campaign.access_link;
  return config;
}

}  // namespace

std::uint64_t derive_run_seed(std::uint64_t campaign_seed,
                              std::uint64_t run_index) {
  return splitmix64(campaign_seed, run_index);
}

std::vector<measure::SingleQueryRecord> run_single_query_campaign(
    const CampaignConfig& campaign, const measure::SingleQueryConfig& study) {
  const std::vector<CellSpec> cells = enumerate_cells(campaign, study);
  std::vector<std::vector<measure::SingleQueryRecord>> shards(cells.size());

  util::ThreadPool pool(campaign.jobs);
  pool.parallel_for(cells.size(), [&](std::size_t index) {
    const CellSpec& cell = cells[index];
    measure::Testbed testbed(cell_testbed_config(campaign, index));

    measure::SingleQueryConfig cell_study = study;
    cell_study.repetitions = 1;
    cell_study.rep_base = cell.rep;
    cell_study.only_vp = cell.vp;
    cell_study.only_resolver = static_cast<int>(cell.resolver);
    cell_study.protocols = {cell.protocol};
    cell_study.max_resolvers = 0;  // only_resolver picks from all verified

    shards[index] = measure::SingleQueryStudy(testbed, cell_study).run();
  });

  std::vector<measure::SingleQueryRecord> merged;
  for (std::vector<measure::SingleQueryRecord>& shard : shards) {
    for (measure::SingleQueryRecord& record : shard) {
      merged.push_back(std::move(record));
    }
  }
  return merged;
}

std::vector<measure::WebRecord> run_web_campaign(
    const CampaignConfig& campaign, const measure::WebStudyConfig& study) {
  const std::vector<CellSpec> cells = enumerate_cells(campaign, study);
  std::vector<std::vector<measure::WebRecord>> shards(cells.size());

  util::ThreadPool pool(campaign.jobs);
  pool.parallel_for(cells.size(), [&](std::size_t index) {
    const CellSpec& cell = cells[index];
    measure::Testbed testbed(cell_testbed_config(campaign, index));

    measure::WebStudyConfig cell_study = study;
    cell_study.repetitions = 1;
    cell_study.rep_base = cell.rep;
    cell_study.only_vp = cell.vp;
    cell_study.only_resolver = static_cast<int>(cell.resolver);
    cell_study.protocols = {cell.protocol};
    cell_study.max_resolvers = 0;

    shards[index] = measure::WebStudy(testbed, cell_study).run();
  });

  std::vector<measure::WebRecord> merged;
  for (std::vector<measure::WebRecord>& shard : shards) {
    for (measure::WebRecord& record : shard) {
      merged.push_back(std::move(record));
    }
  }
  return merged;
}

}  // namespace doxlab::runner
