#include "tls/session.h"

#include <utility>

#include "util/logging.h"

namespace doxlab::tls {

TlsSession::TlsSession(TlsConfig config, Callbacks callbacks)
    : config_(std::move(config)),
      cb_(std::move(callbacks)),
      wire_(config_.wire_sizes),
      state_(config_.is_server ? State::kServerWaitClientHello
                               : State::kIdle) {}

void TlsSession::emit(util::Buffer bytes) {
  if (cb_.send_transport) cb_.send_transport(std::move(bytes));
}

void TlsSession::fail(const std::string& reason) {
  if (failed_) return;
  failed_ = true;
  state_ = State::kFailed;
  DOXLAB_DEBUG("TLS failure: " << reason);
  if (cb_.on_error) cb_.on_error(util::Error::tls_alert(reason));
}

void TlsSession::start(std::optional<SessionTicket> ticket,
                       std::vector<std::uint8_t> early_data) {
  if (config_.is_server || state_ != State::kIdle) {
    fail("start() on server or already-started session");
    return;
  }
  ClientHello ch;
  ch.max_version = config_.max_version;
  ch.sni = config_.sni;
  ch.alpn = config_.alpn;

  const SimTime now = cb_.now ? cb_.now() : 0;
  if (ticket && ticket->valid_at(now) &&
      config_.max_version == TlsVersion::kTls13) {
    ch.psk = *ticket;
    offered_ticket_ = *ticket;
    // 0-RTT requires a PSK whose ticket permitted early data.
    if (config_.enable_0rtt && ticket->allow_early_data &&
        !early_data.empty()) {
      ch.early_data = true;
    }
  }

  emit(wire_.client_hello_record(ch));
  if (ch.early_data) {
    sent_early_data_ = true;
    // Keep a copy: if the server rejects 0-RTT we must retransmit the data
    // after the handshake (RFC 8446 appendix D.3).
    early_data_copy_ = early_data;
    emit(wire_.application_data_record(early_data));
  } else if (!early_data.empty()) {
    // Not eligible for 0-RTT: treat as regular queued data.
    pending_app_data_.insert(pending_app_data_.end(), early_data.begin(),
                             early_data.end());
  }
  state_ = State::kClientWaitServerFlight;
}

void TlsSession::send_application_data(util::Buffer data) {
  if (failed_ || data.empty()) return;
  // TLS 1.3 servers may send application data right after their Finished
  // (0.5-RTT data) without waiting for the client's Finished — that is how
  // a resolver answers a 0-RTT query within a single round trip.
  const bool can_send =
      complete_ || (config_.is_server && server_flight_sent_ &&
                    negotiated_ == TlsVersion::kTls13);
  if (!can_send) {
    pending_app_data_.insert(pending_app_data_.end(), data.data(),
                             data.data() + data.size());
    return;
  }
  emit(wire_.seal_application_data(std::move(data)));
}

void TlsSession::send_close_notify() {
  if (failed_) return;
  emit(wire_.alert_record());
}

void TlsSession::flush_pending() {
  if (pending_app_data_.empty()) return;
  emit(wire_.application_data_record(pending_app_data_));
  pending_app_data_.clear();
}

void TlsSession::complete_handshake() {
  complete_ = true;
  state_ = State::kEstablished;
  HandshakeInfo info;
  info.version = negotiated_;
  info.resumed = resumed_;
  info.early_data_accepted = early_accepted_;
  info.alpn = negotiated_alpn_;
  info.round_trips = (negotiated_ == TlsVersion::kTls13) ? 1 : 2;
  if (early_accepted_) info.round_trips = 0;
  info_ = info;
  // Queued application data must hit the wire before the completion
  // callback runs: data the callback sends (e.g. an HTTP/2 request) has to
  // stay ordered after the queued connection preface.
  flush_pending();
  if (cb_.on_handshake_complete) cb_.on_handshake_complete(info);
}

void TlsSession::on_transport_data(std::span<const std::uint8_t> data) {
  if (failed_) return;
  recv_buffer_.insert(recv_buffer_.end(), data.begin(), data.end());

  while (true) {
    auto record = TlsWire::next_record(recv_buffer_);
    if (!record) return;

    switch (record->type) {
      case RecordType::kChangeCipherSpec:
        // TLS 1.2 key change marker; no state we need to track.
        continue;
      case RecordType::kAlert:
        if (cb_.on_close_notify) cb_.on_close_notify();
        continue;
      case RecordType::kApplicationData: {
        auto payload = TlsWire::app_payload(record->body);
        if (config_.is_server && !complete_) {
          // Early data: only legal if we accepted it in this handshake.
          if (early_accepted_) {
            if (cb_.on_application_data) cb_.on_application_data(payload);
          }
          // Otherwise: 0-RTT rejected/ignored (client will retransmit after
          // completion) — drop silently, as real servers do.
          continue;
        }
        if (!complete_) {
          fail("application data before handshake completion");
          return;
        }
        if (cb_.on_application_data) cb_.on_application_data(payload);
        continue;
      }
      case RecordType::kHandshake: {
        // Records after ServerHello carry AEAD tags in TLS 1.3; in TLS 1.2
        // only the Finished messages are encrypted. The wire model tracks
        // this with a per-message flag derived from current state.
        bool encrypted = encrypted_handshake_;
        auto msg = wire_.parse_handshake(record->body, encrypted);
        if (!msg) {
          // Retry with the opposite framing: handles the transition records
          // (ServerHello itself is plaintext; what follows is encrypted).
          msg = wire_.parse_handshake(record->body, !encrypted);
          if (!msg) {
            fail("malformed handshake record");
            return;
          }
        }
        if (config_.is_server) {
          if (msg->type == HandshakeType::kClientHello) {
            if (!msg->client_hello) {
              fail("CH without payload");
              return;
            }
            server_process_client_hello(*msg->client_hello);
          } else if (msg->type == HandshakeType::kFinished ||
                     msg->type == HandshakeType::kClientKeyExchange) {
            if (msg->type == HandshakeType::kFinished) {
              server_process_client_finished();
            }
            // CKE/CCS are absorbed; Finished drives completion.
          }
        } else {
          client_process_flight(*msg);
        }
        continue;
      }
    }
  }
}

void TlsSession::client_process_flight(const HandshakeMessage& msg) {
  switch (msg.type) {
    case HandshakeType::kServerHello: {
      if (!msg.server_hello) return fail("SH without payload");
      saw_server_hello_ = true;
      negotiated_ = msg.server_hello->version;
      resumed_ = msg.server_hello->psk_accepted;
      encrypted_handshake_ = negotiated_ == TlsVersion::kTls13;
      break;
    }
    case HandshakeType::kEncryptedExtensions: {
      if (!msg.encrypted_extensions) return fail("EE without payload");
      negotiated_alpn_ = msg.encrypted_extensions->alpn;
      early_accepted_ = msg.encrypted_extensions->early_data_accepted &&
                        sent_early_data_;
      if (sent_early_data_ && !early_accepted_) {
        // Server rejected 0-RTT: requeue for post-handshake transmission.
        pending_app_data_.insert(pending_app_data_.end(),
                                 early_data_copy_.begin(),
                                 early_data_copy_.end());
      }
      early_data_copy_.clear();
      break;
    }
    case HandshakeType::kCertificate:
    case HandshakeType::kCertificateVerify:
    case HandshakeType::kServerKeyExchange:
      break;  // byte cost only
    case HandshakeType::kServerHelloDone: {
      // TLS 1.2 second client flight.
      if (negotiated_ != TlsVersion::kTls12) {
        return fail("SHD in TLS 1.3 handshake");
      }
      emit(wire_.client_key_exchange_record());
      emit(wire_.change_cipher_spec_record());
      encrypted_handshake_ = true;
      emit(wire_.finished_record());
      state_ = State::kClientWaitServerFinished;
      break;
    }
    case HandshakeType::kFinished: {
      if (negotiated_ == TlsVersion::kTls13) {
        if (!saw_server_hello_) return fail("Fin before SH");
        saw_server_finished_ = true;
        // Client Finished; handshake complete on our side.
        emit(wire_.finished_record());
        complete_handshake();
      } else {
        // TLS 1.2 server Finished after our CCS/Fin.
        if (state_ != State::kClientWaitServerFinished) {
          return fail("unexpected TLS 1.2 Finished");
        }
        complete_handshake();
      }
      break;
    }
    case HandshakeType::kNewSessionTicket: {
      if (!msg.new_session_ticket) return fail("NST without payload");
      if (cb_.on_new_ticket) cb_.on_new_ticket(msg.new_session_ticket->ticket);
      break;
    }
    default:
      break;
  }
}

void TlsSession::server_process_client_hello(const ClientHello& ch) {
  if (state_ != State::kServerWaitClientHello) return;  // duplicate
  client_hello_ = ch;

  // Version: lowest of the two maxima.
  negotiated_ = (ch.max_version == TlsVersion::kTls13 &&
                 config_.max_version == TlsVersion::kTls13)
                    ? TlsVersion::kTls13
                    : TlsVersion::kTls12;

  // ALPN: first client protocol we also support.
  negotiated_alpn_.clear();
  for (const auto& proto : ch.alpn) {
    for (const auto& mine : config_.alpn) {
      if (proto == mine) {
        negotiated_alpn_ = proto;
        break;
      }
    }
    if (!negotiated_alpn_.empty()) break;
  }
  if (!ch.alpn.empty() && negotiated_alpn_.empty()) {
    fail("no ALPN overlap");
    return;
  }

  const SimTime now = cb_.now ? cb_.now() : 0;
  resumed_ = false;
  early_accepted_ = false;
  if (negotiated_ == TlsVersion::kTls13 && ch.psk &&
      ch.psk->server_secret == config_.ticket_secret &&
      ch.psk->valid_at(now)) {
    resumed_ = true;
    if (ch.early_data && config_.enable_0rtt && ch.psk->allow_early_data) {
      early_accepted_ = true;
    }
  }

  ServerHello sh;
  sh.version = negotiated_;
  sh.psk_accepted = resumed_;
  emit(wire_.server_hello_record(sh));

  if (negotiated_ == TlsVersion::kTls13) {
    encrypted_handshake_ = true;
    EncryptedExtensions ee;
    ee.alpn = negotiated_alpn_;
    ee.early_data_accepted = early_accepted_;
    emit(wire_.encrypted_extensions_record(ee));
    if (!resumed_) {
      emit(wire_.certificate_record(config_.certificate_chain_size));
      emit(wire_.certificate_verify_record());
    }
    emit(wire_.finished_record());
    server_flight_sent_ = true;
    state_ = State::kServerWaitClientFinished;
  } else {
    emit(wire_.certificate_record(config_.certificate_chain_size));
    emit(wire_.server_key_exchange_record());
    emit(wire_.server_hello_done_record());
    state_ = State::kServerWaitClientFinished;
  }
}

void TlsSession::server_process_client_finished() {
  if (state_ != State::kServerWaitClientFinished) return;
  if (negotiated_ == TlsVersion::kTls12) {
    emit(wire_.change_cipher_spec_record());
    emit(wire_.finished_record());
  }
  complete_handshake();

  if (negotiated_ == TlsVersion::kTls13 && config_.enable_session_tickets) {
    SessionTicket ticket;
    ticket.server_secret = config_.ticket_secret;
    ticket.ticket_id = next_ticket_id_++;
    ticket.issued_at = cb_.now ? cb_.now() : 0;
    ticket.lifetime = config_.ticket_lifetime;
    ticket.allow_early_data = config_.enable_0rtt;
    ticket.version = negotiated_;
    ticket.alpn = negotiated_alpn_;
    emit(wire_.new_session_ticket_record(ticket));
  }
}

}  // namespace doxlab::tls
