#include "tls/wire.h"

#include <algorithm>

namespace doxlab::tls {

namespace {

void write_u24(ByteWriter& w, std::size_t v) {
  w.u8(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  w.u16(static_cast<std::uint16_t>(v & 0xFFFF));
}

std::optional<std::size_t> read_u24(ByteReader& r) {
  auto hi = r.u8();
  auto lo = r.u16();
  if (!hi || !lo) return std::nullopt;
  return (static_cast<std::size_t>(*hi) << 16) | *lo;
}

void write_string(ByteWriter& w, const std::string& s) {
  w.u16(static_cast<std::uint16_t>(s.size()));
  w.bytes(s);
}

std::optional<std::string> read_string(ByteReader& r) {
  auto len = r.u16();
  if (!len) return std::nullopt;
  return r.string(*len);
}

/// Exact encoded size of write_string's output.
std::size_t string_size(const std::string& s) { return 2 + s.size(); }

/// Exact encoded size of write_ticket's output.
std::size_t ticket_size(const SessionTicket& t) {
  return 8 * 4 + 1 + 2 + string_size(t.alpn);
}

void write_ticket(ByteWriter& w, const SessionTicket& t) {
  w.u64(t.server_secret);
  w.u64(t.ticket_id);
  w.u64(static_cast<std::uint64_t>(t.issued_at));
  w.u64(static_cast<std::uint64_t>(t.lifetime));
  w.u8(t.allow_early_data ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(t.version));
  write_string(w, t.alpn);
}

std::optional<SessionTicket> read_ticket(ByteReader& r) {
  SessionTicket t;
  auto secret = r.u64();
  auto id = r.u64();
  auto issued = r.u64();
  auto lifetime = r.u64();
  auto early = r.u8();
  auto version = r.u16();
  if (!secret || !id || !issued || !lifetime || !early || !version) {
    return std::nullopt;
  }
  auto alpn = read_string(r);
  if (!alpn) return std::nullopt;
  t.server_secret = *secret;
  t.ticket_id = *id;
  t.issued_at = static_cast<SimTime>(*issued);
  t.lifetime = static_cast<SimTime>(*lifetime);
  t.allow_early_data = *early != 0;
  t.version = static_cast<TlsVersion>(*version);
  t.alpn = std::move(*alpn);
  return t;
}

}  // namespace

util::Buffer TlsWire::handshake_record(HandshakeType type,
                                       std::span<const std::uint8_t> semantic,
                                       std::size_t declared_body,
                                       bool encrypted) const {
  // One pooled slab holds the whole record: header, message, padding, tag.
  const std::size_t body = std::max(declared_body, semantic.size());
  const std::size_t record_len =
      4 + body + (encrypted ? kAeadTagBytes : 0);
  ByteWriter w = ByteWriter::pooled(kRecordHeaderBytes + record_len,
                                    /*headroom=*/0);
  w.u8(static_cast<std::uint8_t>(RecordType::kHandshake));
  w.u16(0x0303);  // legacy record version
  w.u16(static_cast<std::uint16_t>(record_len));
  w.u8(static_cast<std::uint8_t>(type));
  write_u24(w, body);
  w.bytes(semantic);
  w.pad(body - semantic.size());
  if (encrypted) w.pad(kAeadTagBytes);
  return w.take_buffer();
}

util::Buffer TlsWire::client_hello_record(const ClientHello& ch) const {
  std::size_t semantic_size = 2 + string_size(ch.sni) + 1 + 1 + 1;
  for (const auto& proto : ch.alpn) semantic_size += string_size(proto);
  if (ch.psk) semantic_size += ticket_size(*ch.psk);
  ByteWriter s(semantic_size);
  s.u16(static_cast<std::uint16_t>(ch.max_version));
  write_string(s, ch.sni);
  s.u8(static_cast<std::uint8_t>(ch.alpn.size()));
  for (const auto& proto : ch.alpn) write_string(s, proto);
  s.u8(ch.psk.has_value() ? 1 : 0);
  if (ch.psk) write_ticket(s, *ch.psk);
  s.u8(ch.early_data ? 1 : 0);

  std::size_t declared = sizes_.client_hello_base + ch.sni.size();
  for (const auto& proto : ch.alpn) declared += proto.size() + 2;
  if (ch.psk) declared += sizes_.psk_extension;
  if (ch.early_data) declared += sizes_.early_data_extension;
  return handshake_record(HandshakeType::kClientHello, s.data(), declared,
                          /*encrypted=*/false);
}

util::Buffer TlsWire::server_hello_record(const ServerHello& sh) const {
  ByteWriter s(3);
  s.u16(static_cast<std::uint16_t>(sh.version));
  s.u8(sh.psk_accepted ? 1 : 0);
  return handshake_record(HandshakeType::kServerHello, s.data(),
                          sizes_.server_hello, /*encrypted=*/false);
}

util::Buffer TlsWire::encrypted_extensions_record(
    const EncryptedExtensions& ee) const {
  ByteWriter s(string_size(ee.alpn) + 1);
  write_string(s, ee.alpn);
  s.u8(ee.early_data_accepted ? 1 : 0);
  return handshake_record(HandshakeType::kEncryptedExtensions, s.data(),
                          sizes_.encrypted_extensions + ee.alpn.size(),
                          /*encrypted=*/true);
}

util::Buffer TlsWire::certificate_record(std::size_t chain_size) const {
  return handshake_record(HandshakeType::kCertificate, {}, chain_size,
                          /*encrypted=*/true);
}

util::Buffer TlsWire::certificate_verify_record() const {
  return handshake_record(HandshakeType::kCertificateVerify, {},
                          sizes_.certificate_verify, /*encrypted=*/true);
}

util::Buffer TlsWire::finished_record() const {
  return handshake_record(HandshakeType::kFinished, {}, sizes_.finished,
                          /*encrypted=*/true);
}

util::Buffer TlsWire::new_session_ticket_record(
    const SessionTicket& ticket) const {
  ByteWriter s(ticket_size(ticket));
  write_ticket(s, ticket);
  return handshake_record(HandshakeType::kNewSessionTicket, s.data(),
                          sizes_.new_session_ticket, /*encrypted=*/true);
}

util::Buffer TlsWire::server_hello_done_record() const {
  return handshake_record(HandshakeType::kServerHelloDone, {}, 4,
                          /*encrypted=*/false);
}

util::Buffer TlsWire::server_key_exchange_record() const {
  return handshake_record(HandshakeType::kServerKeyExchange, {},
                          sizes_.server_key_exchange, /*encrypted=*/false);
}

util::Buffer TlsWire::client_key_exchange_record() const {
  return handshake_record(HandshakeType::kClientKeyExchange, {},
                          sizes_.client_key_exchange, /*encrypted=*/false);
}

util::Buffer TlsWire::change_cipher_spec_record() const {
  ByteWriter w = ByteWriter::pooled(6, /*headroom=*/0);
  w.u8(static_cast<std::uint8_t>(RecordType::kChangeCipherSpec));
  w.u16(0x0303);
  w.u16(1);
  w.u8(1);
  return w.take_buffer();
}

util::Buffer TlsWire::application_data_record(
    std::span<const std::uint8_t> payload) const {
  ByteWriter w = ByteWriter::pooled(
      kRecordHeaderBytes + payload.size() + kAeadTagBytes, /*headroom=*/0);
  w.u8(static_cast<std::uint8_t>(RecordType::kApplicationData));
  w.u16(0x0303);
  w.u16(static_cast<std::uint16_t>(payload.size() + kAeadTagBytes));
  w.bytes(payload);
  w.pad(kAeadTagBytes);
  return w.take_buffer();
}

util::Buffer TlsWire::seal_application_data(util::Buffer payload) const {
  const std::size_t record_len = payload.size() + kAeadTagBytes;
  std::uint8_t* tag = payload.append(kAeadTagBytes);
  std::memset(tag, 0, kAeadTagBytes);
  std::uint8_t* header = payload.prepend(kRecordHeaderBytes);
  header[0] = static_cast<std::uint8_t>(RecordType::kApplicationData);
  header[1] = 0x03;
  header[2] = 0x03;
  header[3] = static_cast<std::uint8_t>(record_len >> 8);
  header[4] = static_cast<std::uint8_t>(record_len & 0xFF);
  return payload;
}

util::Buffer TlsWire::alert_record() const {
  ByteWriter w =
      ByteWriter::pooled(kRecordHeaderBytes + 2 + kAeadTagBytes,
                         /*headroom=*/0);
  w.u8(static_cast<std::uint8_t>(RecordType::kAlert));
  w.u16(0x0303);
  w.u16(2 + kAeadTagBytes);
  w.u8(1);  // warning
  w.u8(0);  // close_notify
  w.pad(kAeadTagBytes);
  return w.take_buffer();
}

namespace {
/// Strips record framing: 5-byte header plus, for encrypted records, the
/// trailing AEAD tag. Used to derive raw messages for QUIC CRYPTO frames.
std::vector<std::uint8_t> strip_record(const util::Buffer& record,
                                       bool encrypted) {
  const std::size_t end =
      record.size() - (encrypted ? kAeadTagBytes : 0);
  return {record.data() + kRecordHeaderBytes, record.data() + end};
}
}  // namespace

std::vector<std::uint8_t> TlsWire::client_hello_message(
    const ClientHello& ch) const {
  return strip_record(client_hello_record(ch), false);
}

std::vector<std::uint8_t> TlsWire::server_hello_message(
    const ServerHello& sh) const {
  return strip_record(server_hello_record(sh), false);
}

std::vector<std::uint8_t> TlsWire::encrypted_extensions_message(
    const EncryptedExtensions& ee) const {
  return strip_record(encrypted_extensions_record(ee), true);
}

std::vector<std::uint8_t> TlsWire::certificate_message(
    std::size_t chain_size) const {
  return strip_record(certificate_record(chain_size), true);
}

std::vector<std::uint8_t> TlsWire::certificate_verify_message() const {
  return strip_record(certificate_verify_record(), true);
}

std::vector<std::uint8_t> TlsWire::finished_message() const {
  return strip_record(finished_record(), true);
}

std::vector<std::uint8_t> TlsWire::new_session_ticket_message(
    const SessionTicket& ticket) const {
  return strip_record(new_session_ticket_record(ticket), true);
}

std::optional<TlsWire::Record> TlsWire::next_record(
    std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < kRecordHeaderBytes) return std::nullopt;
  ByteReader r(buffer);
  auto type = r.u8();
  r.u16();  // legacy version
  auto len = r.u16();
  if (!type || !len) return std::nullopt;
  if (buffer.size() < kRecordHeaderBytes + *len) return std::nullopt;
  Record record;
  record.type = static_cast<RecordType>(*type);
  record.body.assign(buffer.begin() + kRecordHeaderBytes,
                     buffer.begin() + kRecordHeaderBytes + *len);
  buffer.erase(buffer.begin(),
               buffer.begin() + kRecordHeaderBytes + *len);
  return record;
}

std::optional<HandshakeMessage> TlsWire::parse_handshake(
    std::span<const std::uint8_t> body, bool encrypted) const {
  if (encrypted) {
    if (body.size() < kAeadTagBytes) return std::nullopt;
    body = body.subspan(0, body.size() - kAeadTagBytes);
  }
  ByteReader r(body);
  auto type = r.u8();
  auto len = read_u24(r);
  if (!type || !len) return std::nullopt;
  HandshakeMessage msg;
  msg.type = static_cast<HandshakeType>(*type);
  msg.body_size = *len;

  switch (msg.type) {
    case HandshakeType::kClientHello: {
      ClientHello ch;
      auto version = r.u16();
      auto sni = read_string(r);
      auto alpn_count = r.u8();
      if (!version || !sni || !alpn_count) return std::nullopt;
      ch.max_version = static_cast<TlsVersion>(*version);
      ch.sni = std::move(*sni);
      for (int i = 0; i < *alpn_count; ++i) {
        auto proto = read_string(r);
        if (!proto) return std::nullopt;
        ch.alpn.push_back(std::move(*proto));
      }
      auto has_psk = r.u8();
      if (!has_psk) return std::nullopt;
      if (*has_psk) {
        auto ticket = read_ticket(r);
        if (!ticket) return std::nullopt;
        ch.psk = std::move(*ticket);
      }
      auto early = r.u8();
      if (!early) return std::nullopt;
      ch.early_data = *early != 0;
      msg.client_hello = std::move(ch);
      break;
    }
    case HandshakeType::kServerHello: {
      ServerHello sh;
      auto version = r.u16();
      auto psk = r.u8();
      if (!version || !psk) return std::nullopt;
      sh.version = static_cast<TlsVersion>(*version);
      sh.psk_accepted = *psk != 0;
      msg.server_hello = sh;
      break;
    }
    case HandshakeType::kEncryptedExtensions: {
      EncryptedExtensions ee;
      auto alpn = read_string(r);
      auto early = r.u8();
      if (!alpn || !early) return std::nullopt;
      ee.alpn = std::move(*alpn);
      ee.early_data_accepted = *early != 0;
      msg.encrypted_extensions = std::move(ee);
      break;
    }
    case HandshakeType::kNewSessionTicket: {
      auto ticket = read_ticket(r);
      if (!ticket) return std::nullopt;
      msg.new_session_ticket = NewSessionTicketMsg{std::move(*ticket)};
      break;
    }
    case HandshakeType::kCertificate:
      msg.certificate_size = *len;
      break;
    default:
      break;  // size-only messages (Finished, CV, SHD, KEX)
  }
  return msg;
}

std::span<const std::uint8_t> TlsWire::app_payload(
    std::span<const std::uint8_t> body) {
  if (body.size() < kAeadTagBytes) return {};
  return body.subspan(0, body.size() - kAeadTagBytes);
}

}  // namespace doxlab::tls
