// TLS session state machine (1.2 and 1.3) over an abstract reliable stream.
//
// The session is transport-agnostic: it emits bytes through a callback
// (wired to a TcpConnection by DoT/DoH) and is fed incoming bytes through
// `on_transport_data`. Flights and round trips:
//
//   TLS 1.3 full:      CH ->  | <- SH,EE,Cert,CV,Fin | Fin ->        (1 RTT)
//   TLS 1.3 resumed:   CH(PSK) -> | <- SH,EE,Fin | Fin ->            (1 RTT)
//   TLS 1.3 0-RTT:     CH(PSK)+early data -> | <- ...,Fin(+answer)   (0 RTT)
//   TLS 1.2:           CH -> | <- SH,Cert,SKE,SHD | CKE,CCS,Fin -> | <- CCS,Fin (2 RTT)
//
// Client application data queues until the handshake completes (or goes out
// as 0-RTT early data). The server issues a NewSessionTicket after the
// handshake when tickets are enabled — 7-day lifetime, as every resolver in
// the paper's population does.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tls/ticket.h"
#include "tls/wire.h"
#include "util/error.h"

namespace doxlab::tls {

struct TlsConfig {
  bool is_server = false;
  /// Highest version this endpoint speaks (server may be TLS 1.2-only — the
  /// paper observed ~1% of DoT/DoH measurements on 1.2).
  TlsVersion max_version = TlsVersion::kTls13;
  /// Client: offered ALPN list, first is preferred. Server: supported list.
  std::vector<std::string> alpn;
  /// Client: server name indication.
  std::string sni;
  /// Server: certificate chain size in bytes (drawn per resolver).
  std::size_t certificate_chain_size = 3000;
  /// Server: issue NewSessionTicket after handshake.
  bool enable_session_tickets = true;
  /// Server: accept early data; client: attempt it when the ticket allows.
  bool enable_0rtt = false;
  /// Server: ticket lifetime (RFC 8446 caps at 7 days).
  SimTime ticket_lifetime = 7 * kDay;
  /// Server: identity for ticket validation (stands in for the ticket key).
  std::uint64_t ticket_secret = 0;
  /// Wire size calibration.
  WireSizes wire_sizes = {};
};

/// Outcome facts about a completed handshake.
struct HandshakeInfo {
  TlsVersion version = TlsVersion::kTls13;
  bool resumed = false;
  bool early_data_accepted = false;
  std::string alpn;
  int round_trips = 1;  // network RTTs consumed before client app data flows
};

class TlsSession {
 public:
  struct Callbacks {
    /// Record bytes to hand to the transport (never empty). The buffer is
    /// pooled and uniquely owned — the transport may ship it as-is.
    std::function<void(util::Buffer)> send_transport;
    /// Handshake completed (client: Fin sent; server: client Fin received).
    std::function<void(const HandshakeInfo&)> on_handshake_complete;
    /// Decrypted application payload.
    std::function<void(std::span<const std::uint8_t>)> on_application_data;
    /// Client only: a NewSessionTicket arrived.
    std::function<void(const SessionTicket&)> on_new_ticket;
    /// Fatal alert / protocol error (always kTlsAlert); the session is dead
    /// afterwards.
    std::function<void(const util::Error&)> on_error;
    /// close_notify received.
    std::function<void()> on_close_notify;
    /// Clock for ticket validity (wired to the simulator).
    std::function<SimTime()> now;
  };

  TlsSession(TlsConfig config, Callbacks callbacks);

  /// Client: begins the handshake, optionally resuming with `ticket` and
  /// sending `early_data` as 0-RTT (only if the ticket permits and config
  /// enables it; otherwise the data is queued for after the handshake).
  void start(std::optional<SessionTicket> ticket = std::nullopt,
             std::vector<std::uint8_t> early_data = {});

  /// Feeds raw transport bytes into the record layer.
  void on_transport_data(std::span<const std::uint8_t> data);

  /// Sends (or queues, pre-handshake) application data. The record header
  /// and AEAD tag are sealed into the buffer in place, so callers that
  /// encode with kRecordHeaderBytes of headroom pay zero copies.
  void send_application_data(util::Buffer data);
  void send_application_data(std::vector<std::uint8_t> data) {
    send_application_data(
        util::Buffer::copy_of(data, /*headroom=*/kRecordHeaderBytes));
  }

  /// Sends close_notify.
  void send_close_notify();

  bool handshake_complete() const { return complete_; }
  bool failed() const { return failed_; }
  const std::optional<HandshakeInfo>& info() const { return info_; }

  /// Client: true when start() actually put early data on the wire.
  bool sent_early_data() const { return sent_early_data_; }

 private:
  enum class State {
    kIdle,
    kClientWaitServerFlight,   // TLS 1.3: expect SH..Fin; 1.2: SH..SHD
    kClientWaitServerFinished, // TLS 1.2 only: expect CCS,Fin
    kServerWaitClientHello,
    kServerWaitClientFinished, // 1.3: Fin; 1.2: CKE,CCS,Fin
    kEstablished,
    kFailed,
  };

  void client_process_flight(const HandshakeMessage& msg);
  void server_process_client_hello(const ClientHello& ch);
  void server_process_client_finished();
  void complete_handshake();
  void flush_pending();
  void fail(const std::string& reason);
  void emit(util::Buffer bytes);

  TlsConfig config_;
  Callbacks cb_;
  TlsWire wire_;
  State state_;

  std::vector<std::uint8_t> recv_buffer_;
  std::vector<std::uint8_t> pending_app_data_;
  std::vector<std::uint8_t> early_data_copy_;
  bool complete_ = false;
  bool failed_ = false;
  bool sent_early_data_ = false;
  bool encrypted_handshake_ = false;  // post-ServerHello records carry tags
  bool server_flight_sent_ = false;   // server may now send 0.5-RTT data

  // Negotiation scratch.
  TlsVersion negotiated_ = TlsVersion::kTls13;
  bool resumed_ = false;
  bool early_accepted_ = false;
  std::string negotiated_alpn_;
  std::optional<SessionTicket> offered_ticket_;
  std::optional<ClientHello> client_hello_;  // server: stash for flight
  std::optional<HandshakeInfo> info_;
  std::uint64_t next_ticket_id_ = 1;

  // TLS 1.3 server flight tracking on the client.
  bool saw_server_hello_ = false;
  bool saw_server_finished_ = false;
};

}  // namespace doxlab::tls
