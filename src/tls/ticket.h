// TLS session tickets (RFC 8446 §4.6.1) and the client-side ticket store.
//
// Resolvers in the paper all support Session Resumption with the maximum
// 7-day ticket lifetime; no resolver supports 0-RTT. Both behaviours are
// per-ticket flags here so the ablation benches can flip them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/types.h"

namespace doxlab::tls {

enum class TlsVersion : std::uint16_t {
  kTls12 = 0x0303,
  kTls13 = 0x0304,
};

/// A resumption ticket as stored by the client. `server_secret` stands in
/// for the server's session-ticket encryption key: the server accepts a
/// ticket iff the secret matches and the ticket is within its lifetime.
struct SessionTicket {
  std::uint64_t server_secret = 0;
  std::uint64_t ticket_id = 0;
  SimTime issued_at = 0;
  SimTime lifetime = 7 * kDay;  // RFC 8446 maximum, what all resolvers use
  bool allow_early_data = false;
  TlsVersion version = TlsVersion::kTls13;
  std::string alpn;

  bool valid_at(SimTime now) const {
    return now >= issued_at && (now - issued_at) < lifetime;
  }
};

/// Client-side ticket cache, keyed by an opaque server key (the DoX clients
/// use "<ip>:<port>/<protocol>"). Holds the most recent ticket per server.
class TicketStore {
 public:
  void put(const std::string& server_key, const SessionTicket& ticket) {
    tickets_[server_key] = ticket;
  }

  /// Returns a ticket that is still valid at `now`, erasing expired ones.
  std::optional<SessionTicket> get(const std::string& server_key, SimTime now);

  void erase(const std::string& server_key) { tickets_.erase(server_key); }
  void clear() { tickets_.clear(); }
  std::size_t size() const { return tickets_.size(); }

 private:
  std::map<std::string, SessionTicket> tickets_;
};

}  // namespace doxlab::tls
