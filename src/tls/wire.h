// TLS record and handshake-message wire model.
//
// We model TLS at message granularity: each handshake message is encoded
// with its real type byte, a 24-bit length, its *semantic* fields (versions,
// ALPN, SNI, PSK ticket, flags), and padding up to a calibrated size that
// matches what real stacks emit (key shares, extension lists, signatures and
// certificates are represented by their byte cost, not their cryptography).
// Records add the 5-byte header and, once encryption is active, a 16-byte
// AEAD tag — so the per-direction byte counts the paper's Table 1 reports
// fall out of actually encoding these messages.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tls/ticket.h"
#include "util/bytes.h"

namespace doxlab::tls {

/// Record content types (RFC 8446 §5.1).
enum class RecordType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

/// Handshake message types (RFC 8446 §4).
enum class HandshakeType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kNewSessionTicket = 4,
  kEncryptedExtensions = 8,
  kCertificate = 11,
  kServerKeyExchange = 12,   // TLS 1.2
  kCertificateVerify = 15,
  kServerHelloDone = 14,     // TLS 1.2
  kClientKeyExchange = 16,   // TLS 1.2
  kFinished = 20,
};

/// Calibrated on-the-wire handshake message body sizes (bytes, excluding the
/// 4-byte message header). Chosen to land the per-direction handshake byte
/// counts near the medians measured in the paper (Table 1).
struct WireSizes {
  std::size_t client_hello_base = 140;      // versions, random, ciphers, key share
  std::size_t psk_extension = 170;          // ticket + binder
  std::size_t early_data_extension = 8;
  std::size_t server_hello = 76;
  std::size_t encrypted_extensions = 10;
  std::size_t certificate_verify = 264;
  std::size_t finished = 36;
  std::size_t new_session_ticket = 208;
  std::size_t server_key_exchange = 300;    // TLS 1.2
  std::size_t client_key_exchange = 70;     // TLS 1.2
  std::size_t record_header = 5;
  std::size_t aead_tag = 16;
};

inline constexpr std::size_t kRecordHeaderBytes = 5;
inline constexpr std::size_t kAeadTagBytes = 16;

/// Semantic content of a ClientHello.
struct ClientHello {
  TlsVersion max_version = TlsVersion::kTls13;
  std::string sni;
  std::vector<std::string> alpn;
  std::optional<SessionTicket> psk;  // offered resumption ticket
  bool early_data = false;
};

/// Semantic content of a ServerHello.
struct ServerHello {
  TlsVersion version = TlsVersion::kTls13;
  bool psk_accepted = false;
};

/// Semantic content of EncryptedExtensions.
struct EncryptedExtensions {
  std::string alpn;
  bool early_data_accepted = false;
};

/// Semantic content of NewSessionTicket.
struct NewSessionTicketMsg {
  SessionTicket ticket;
};

/// A parsed handshake message: type + semantic payload (variant-free —
/// exactly one of the optionals is set, matching `type`).
struct HandshakeMessage {
  HandshakeType type = HandshakeType::kClientHello;
  std::size_t body_size = 0;  // declared size incl. padding
  std::optional<ClientHello> client_hello;
  std::optional<ServerHello> server_hello;
  std::optional<EncryptedExtensions> encrypted_extensions;
  std::optional<NewSessionTicketMsg> new_session_ticket;
  std::size_t certificate_size = 0;  // kCertificate only
};

/// Encodes handshake messages (semantic fields + padding to the calibrated
/// size) and wraps them in records.
class TlsWire {
 public:
  explicit TlsWire(WireSizes sizes = {}) : sizes_(sizes) {}

  // --- raw handshake message encoders (no record framing; QUIC carries
  //     these directly inside CRYPTO frames) ---
  std::vector<std::uint8_t> client_hello_message(const ClientHello& ch) const;
  std::vector<std::uint8_t> server_hello_message(const ServerHello& sh) const;
  std::vector<std::uint8_t> encrypted_extensions_message(
      const EncryptedExtensions& ee) const;
  std::vector<std::uint8_t> certificate_message(std::size_t chain_size) const;
  std::vector<std::uint8_t> certificate_verify_message() const;
  std::vector<std::uint8_t> finished_message() const;
  std::vector<std::uint8_t> new_session_ticket_message(
      const SessionTicket& ticket) const;

  // --- handshake message encoders (return full record bytes in pooled
  //     buffers, ready to hand to the transport without another copy) ---
  util::Buffer client_hello_record(const ClientHello& ch) const;
  util::Buffer server_hello_record(const ServerHello& sh) const;
  util::Buffer encrypted_extensions_record(
      const EncryptedExtensions& ee) const;
  util::Buffer certificate_record(std::size_t chain_size) const;
  util::Buffer certificate_verify_record() const;
  util::Buffer finished_record() const;
  util::Buffer new_session_ticket_record(const SessionTicket& ticket) const;
  util::Buffer server_hello_done_record() const;
  util::Buffer server_key_exchange_record() const;
  util::Buffer client_key_exchange_record() const;
  util::Buffer change_cipher_spec_record() const;

  /// Application data record (encrypted: header + payload + tag).
  util::Buffer application_data_record(
      std::span<const std::uint8_t> payload) const;

  /// Seals `payload` as an application-data record *in place*: the 5-byte
  /// record header goes into the buffer's headroom and the AEAD tag into
  /// its tailroom — zero copies when the payload was encoded with
  /// kRecordHeaderBytes of headroom. Byte-identical to
  /// application_data_record(payload).
  util::Buffer seal_application_data(util::Buffer payload) const;

  /// close_notify alert.
  util::Buffer alert_record() const;

  const WireSizes& sizes() const { return sizes_; }

  // --- decoding ---
  /// A record pulled off the byte stream.
  struct Record {
    RecordType type;
    std::vector<std::uint8_t> body;  // excludes header, includes any tag
  };

  /// Extracts the next complete record from `buffer`, erasing consumed
  /// bytes; nullopt if a full record is not yet buffered.
  static std::optional<Record> next_record(std::vector<std::uint8_t>& buffer);

  /// Parses a handshake record body into a message. The body may contain a
  /// trailing AEAD tag (encrypted records); `encrypted` strips it.
  std::optional<HandshakeMessage> parse_handshake(
      std::span<const std::uint8_t> body, bool encrypted) const;

  /// Strips the AEAD tag from an application-data record body.
  static std::span<const std::uint8_t> app_payload(
      std::span<const std::uint8_t> body);

 private:
  util::Buffer handshake_record(HandshakeType type,
                                std::span<const std::uint8_t> semantic,
                                std::size_t declared_body,
                                bool encrypted) const;

  WireSizes sizes_;
};

}  // namespace doxlab::tls
