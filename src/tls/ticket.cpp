#include "tls/ticket.h"

namespace doxlab::tls {

std::optional<SessionTicket> TicketStore::get(const std::string& server_key,
                                              SimTime now) {
  auto it = tickets_.find(server_key);
  if (it == tickets_.end()) return std::nullopt;
  if (!it->second.valid_at(now)) {
    tickets_.erase(it);
    return std::nullopt;
  }
  return it->second;
}

}  // namespace doxlab::tls
