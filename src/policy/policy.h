// The policy pipeline: a compiled rules/actions chain evaluated on every
// stub query *before* cache, coalescing, or any upstream work.
//
// A production encrypted-DNS forwarder spends its hot path classifying
// traffic — shedding random-subdomain floods, rate-limiting abusive
// subnets, routing zones to dedicated upstream pools — before resolving
// anything. This module is the dnsdist `DNSRule`/`DNSAction` split
// recompiled for this codebase: instead of a list of virtual rule objects,
// a `ChainConfig` (declarative rule descriptions) is *compiled* into a flat
// vector of rule records whose matchers read only borrowed views — the
// client address from the datagram and the already-decoded flat `DnsName`
// labels — so evaluation performs zero allocations per query and the
// cached fast path stays allocation-free end to end.
//
// Matchers (`MatcherKind`):
//   * kAny          — always matches (chain-terminal defaults)
//   * kClientSubnet — dnsdist NetmaskGroupRule: client address against a
//                     set of CIDR masks
//   * kQnameSuffix  — dnsdist SuffixMatchNodeRule: label-wise suffix test
//                     over the flat DnsName storage (DnsName::has_suffix)
//   * kQType        — query type equality
//   * kRateLimit    — dnsdist MaxQPSIPRule: per-client-subnet token
//                     bucket; the rule *matches when the subnet is over
//                     budget*, so pairing it with Drop sheds the excess
//
// Actions (`ActionKind`) are terminal — the first matching rule decides:
//   * kAllow     — short-circuit: skip the rest of the chain, resolve
//                  normally on the default pool
//   * kDrop      — discard silently (the client sees a timeout)
//   * kRefuse    — answer immediately with a configurable RCODE (REFUSED)
//   * kTruncate  — answer empty with TC set (push the client to retry
//                  over TCP — the classic spoofed-source defence)
//   * kRoutePool — resolve on a named upstream pool (compiled to a pool
//                  index; unknown names fail at compile time, not per
//                  query)
//
// Every rule keeps a hit counter; `RuleChain::stats()` snapshots them for
// EngineStats and the `doxperf --policy-csv` report.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dns/name.h"
#include "dns/types.h"
#include "net/address.h"
#include "util/types.h"

namespace doxlab::policy {

/// One CIDR netmask ("10.66.0.0/16").
struct Netmask {
  std::uint32_t network = 0;
  std::uint32_t mask = 0;

  /// Parses "a.b.c.d/len" (len omitted means /32). Throws
  /// std::invalid_argument on malformed input.
  static Netmask parse(std::string_view text);
  static Netmask of(net::IpAddress address, int prefix_len);

  bool contains(net::IpAddress address) const {
    return (address.value() & mask) == network;
  }
  std::string to_string() const;
};

/// dnsdist NetmaskGroup: membership across a set of masks.
class NetmaskGroup {
 public:
  NetmaskGroup() = default;
  explicit NetmaskGroup(std::vector<Netmask> masks)
      : masks_(std::move(masks)) {}

  void add(Netmask mask) { masks_.push_back(mask); }
  bool matches(net::IpAddress address) const {
    for (const Netmask& mask : masks_) {
      if (mask.contains(address)) return true;
    }
    return false;
  }
  bool empty() const { return masks_.empty(); }
  std::size_t size() const { return masks_.size(); }

 private:
  std::vector<Netmask> masks_;
};

/// Deterministic token bucket on simulated time. Tokens are stored in
/// micro-tokens (1e-6 token) and refilled from integer SimTime deltas, so
/// refill is exact and bit-reproducible: rate tokens/second over a
/// microsecond clock means one micro-token per (microsecond x rate).
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(std::uint32_t rate_per_s, std::uint32_t burst)
      : rate_(rate_per_s),
        capacity_(std::uint64_t{burst} * kMicroToken),
        micro_tokens_(std::uint64_t{burst} * kMicroToken) {}

  /// Refills for the elapsed time, then tries to consume one token.
  /// Returns false when the bucket is empty (the caller is over budget).
  bool take(SimTime now) {
    refill(now);
    if (micro_tokens_ < kMicroToken) return false;
    micro_tokens_ -= kMicroToken;
    return true;
  }

  /// Tokens currently available (floor).
  std::uint64_t available(SimTime now) {
    refill(now);
    return micro_tokens_ / kMicroToken;
  }

 private:
  static constexpr std::uint64_t kMicroToken = 1000000;

  void refill(SimTime now) {
    if (now <= last_) return;
    // rate tokens/s == rate micro-tokens/us with a 1e6 scale: exact.
    const std::uint64_t gained =
        static_cast<std::uint64_t>(now - last_) * rate_;
    micro_tokens_ = std::min(capacity_, micro_tokens_ + gained);
    last_ = now;
  }

  std::uint32_t rate_ = 0;
  std::uint64_t capacity_ = 0;
  std::uint64_t micro_tokens_ = 0;
  SimTime last_ = 0;
};

/// Per-client-subnet QPS limiter: clients are masked to `prefix_len` and
/// each subnet gets its own token bucket (rate 0 with a positive burst is
/// a refill-free bucket: the burst allowance, then always over limit).
/// Buckets live in a fixed-size
/// direct-mapped table (no allocation after construction): a hash collision
/// evicts the cold slot and starts the newcomer with a full bucket — a
/// bounded-memory trade real rate limiters make; with the default 4096
/// slots and a handful of active subnets, collisions are effectively zero.
class SubnetRateLimiter {
 public:
  SubnetRateLimiter() = default;
  SubnetRateLimiter(std::uint32_t rate_per_s, std::uint32_t burst,
                    int prefix_len, std::size_t slots = 4096);

  /// True when the client's subnet is OVER budget (the rule "matches").
  bool over_limit(net::IpAddress client, SimTime now);

  int prefix_len() const { return prefix_len_; }

 private:
  struct Slot {
    std::uint32_t key = kEmptyKey;
    TokenBucket bucket;
  };
  static constexpr std::uint32_t kEmptyKey = 0xFFFFFFFF;

  std::uint32_t rate_ = 0;
  std::uint32_t burst_ = 0;
  std::uint32_t mask_ = 0;
  int prefix_len_ = 24;
  std::vector<Slot> slots_;
};

/// What a matched rule does with the query.
enum class ActionKind : std::uint8_t {
  kAllow = 0,  ///< short-circuit: resolve normally
  kDrop,       ///< discard silently
  kRefuse,     ///< immediate response with `rcode`
  kTruncate,   ///< immediate empty response with TC set
  kRoutePool,  ///< resolve on the named upstream pool
};

std::string_view action_kind_name(ActionKind kind);

/// How a rule decides whether it applies.
enum class MatcherKind : std::uint8_t {
  kAny = 0,
  kClientSubnet,
  kQnameSuffix,
  kQType,
  kRateLimit,
};

std::string_view matcher_kind_name(MatcherKind kind);

/// One declarative rule, compiled by RuleChain.
struct RuleConfig {
  /// Stats/CSV label; defaults to "rule<i>" when empty.
  std::string name;

  MatcherKind matcher = MatcherKind::kAny;
  /// Inverts the matcher (rate-limit rules cannot be negated: "under
  /// budget" as a match would charge tokens to non-matching traffic).
  bool negate = false;

  /// kClientSubnet: CIDR list.
  std::vector<std::string> subnets;
  /// kQnameSuffix: suffix names in presentation form.
  std::vector<std::string> suffixes;
  /// kQType.
  dns::RRType qtype = dns::RRType::kA;
  /// kRateLimit: budget per subnet of `subnet_prefix_len`.
  std::uint32_t rate_qps = 0;
  std::uint32_t burst = 0;  ///< 0: defaults to 2x rate
  int subnet_prefix_len = 24;

  ActionKind action = ActionKind::kAllow;
  /// kRefuse.
  dns::RCode rcode = dns::RCode::kRefused;
  /// kRoutePool: named pool, resolved to an index at compile time.
  std::string pool;
};

struct ChainConfig {
  std::vector<RuleConfig> rules;

  bool empty() const { return rules.empty(); }
};

/// Slices every rate-limit rule's budget for shard `shard_index` of
/// `shards` per-shard chain instances (the sharded engine gives each shard
/// its own compiled chain — limiter state is not shared across threads).
/// Rules keyed at /32 — the granularity clients are source-hashed onto
/// shards with — are left untouched: one address's traffic lands wholly on
/// one shard, so that shard's bucket already enforces exactly the
/// configured budget. Coarser-prefix rules spread a subnet's clients
/// across shards, so their budgets are split *exactly*: floor share plus
/// one remainder token for the first `rate % shards` shards, summing to
/// the configured rate (a zero-share shard keeps a refill-free bucket that
/// sheds everything past its burst slice). The split is still an
/// approximation for skewed subnets whose traffic concentrates on few
/// shards — those get over-shed, as documented in DESIGN.md §10.
ChainConfig scale_rate_limits(ChainConfig chain, std::uint32_t shards,
                              std::uint32_t shard_index);

/// Everything a matcher may look at. Views borrow from the caller's
/// already-decoded query — evaluation never copies.
struct QueryInfo {
  net::IpAddress client;
  const dns::DnsName& qname;
  dns::RRType qtype = dns::RRType::kA;
  SimTime now = 0;
};

/// The chain's decision for one query.
struct Verdict {
  ActionKind action = ActionKind::kAllow;
  dns::RCode rcode = dns::RCode::kRefused;  ///< kRefuse only
  std::uint32_t pool = 0;   ///< resolved pool index (kRoutePool / default 0)
  std::int32_t rule = -1;   ///< matched rule index; -1: fell off the chain

  bool allowed() const { return action == ActionKind::kAllow; }
};

/// Per-rule counter snapshot.
struct RuleStats {
  std::string name;
  MatcherKind matcher = MatcherKind::kAny;
  ActionKind action = ActionKind::kAllow;
  std::uint64_t matches = 0;
};

/// Renders per-rule counters as CSV ("rule,matcher,action,matches"), one
/// row per rule in chain order — the `doxperf --policy-csv` report, pinned
/// by the policy_csv_pinned regression test.
std::string policy_csv(const std::vector<RuleStats>& rules);

/// The compiled chain. Construction parses/validates every rule once
/// (netmasks, suffix names, pool names); evaluate() is then a flat loop of
/// view-only matchers — no allocation, no virtual dispatch.
class RuleChain {
 public:
  /// An empty chain: every query is allowed on pool 0.
  RuleChain() = default;

  /// Compiles `config`. `pool_names` maps named pools to indices for
  /// kRoutePool resolution. Throws std::invalid_argument on malformed
  /// netmasks/suffixes, unknown pool names, negated rate limits, or a
  /// zero-rate zero-burst limiter.
  RuleChain(const ChainConfig& config,
            const std::vector<std::string>& pool_names);

  /// Applies the chain in order; the first matching rule's action wins.
  /// Falls off the end -> Allow on pool 0. Allocation-free.
  Verdict evaluate(const QueryInfo& query);

  bool empty() const { return rules_.empty(); }
  std::size_t size() const { return rules_.size(); }
  /// Total evaluate() calls.
  std::uint64_t evaluations() const { return evaluations_; }
  std::vector<RuleStats> stats() const;

 private:
  /// One compiled rule record. Matcher payloads are member values (not
  /// pointers into config), so the chain owns everything it reads.
  struct Rule {
    std::string name;
    MatcherKind matcher = MatcherKind::kAny;
    bool negate = false;
    NetmaskGroup netmasks;
    std::vector<dns::DnsName> suffixes;
    dns::RRType qtype = dns::RRType::kA;
    SubnetRateLimiter limiter;
    ActionKind action = ActionKind::kAllow;
    dns::RCode rcode = dns::RCode::kRefused;
    std::uint32_t pool = 0;
    std::uint64_t matches = 0;
  };

  bool matches(Rule& rule, const QueryInfo& query);

  std::vector<Rule> rules_;
  std::uint64_t evaluations_ = 0;
};

}  // namespace doxlab::policy
