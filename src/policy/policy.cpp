#include "policy/policy.h"

#include <algorithm>
#include <stdexcept>

namespace doxlab::policy {

Netmask Netmask::parse(std::string_view text) {
  int prefix_len = 32;
  const std::size_t slash = text.find('/');
  std::string_view addr_text = text;
  if (slash != std::string_view::npos) {
    addr_text = text.substr(0, slash);
    const std::string_view len_text = text.substr(slash + 1);
    if (len_text.empty() || len_text.size() > 2) {
      throw std::invalid_argument("bad netmask prefix: " + std::string(text));
    }
    prefix_len = 0;
    for (char c : len_text) {
      if (c < '0' || c > '9') {
        throw std::invalid_argument("bad netmask prefix: " +
                                    std::string(text));
      }
      prefix_len = prefix_len * 10 + (c - '0');
    }
  }
  const auto address = net::IpAddress::parse(addr_text);
  if (!address) {
    throw std::invalid_argument("bad netmask address: " + std::string(text));
  }
  return of(*address, prefix_len);
}

Netmask Netmask::of(net::IpAddress address, int prefix_len) {
  if (prefix_len < 0 || prefix_len > 32) {
    throw std::invalid_argument("netmask prefix out of range");
  }
  Netmask out;
  out.mask = prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  out.network = address.value() & out.mask;
  return out;
}

std::string Netmask::to_string() const {
  int prefix_len = 0;
  for (std::uint32_t m = mask; m != 0; m <<= 1) ++prefix_len;
  return net::IpAddress(network).to_string() + "/" +
         std::to_string(prefix_len);
}

SubnetRateLimiter::SubnetRateLimiter(std::uint32_t rate_per_s,
                                     std::uint32_t burst, int prefix_len,
                                     std::size_t slots)
    : rate_(rate_per_s),
      burst_(burst == 0 ? 2 * rate_per_s : burst),
      prefix_len_(prefix_len) {
  // Rate 0 with a positive burst is a refill-free bucket (the zero-share
  // shard case of scale_rate_limits): the subnet spends its burst
  // allowance, then everything is over limit. Both zero would shed every
  // query unconditionally — reject that as a config typo.
  if (rate_per_s == 0 && burst_ == 0) {
    throw std::invalid_argument(
        "rate limiter needs a positive rate or burst");
  }
  if (prefix_len < 0 || prefix_len > 32) {
    throw std::invalid_argument("rate limiter prefix out of range");
  }
  mask_ = prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  // Power-of-two table so the hash folds with a mask.
  std::size_t capacity = 16;
  while (capacity < slots) capacity <<= 1;
  slots_.resize(capacity);
}

bool SubnetRateLimiter::over_limit(net::IpAddress client, SimTime now) {
  const std::uint32_t key = client.value() & mask_;
  // Fibonacci-hash the subnet into the direct-mapped table.
  const std::size_t index =
      (std::uint64_t{key} * 0x9E3779B97F4A7C15ull >> 32) &
      (slots_.size() - 1);
  Slot& slot = slots_[index];
  if (slot.key != key) {
    // Collision or first sight: the newcomer takes the slot with a fresh
    // full bucket (bounded memory beats per-subnet exactness here).
    slot.key = key;
    slot.bucket = TokenBucket(rate_, burst_);
  }
  return !slot.bucket.take(now);
}

std::string_view action_kind_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kAllow:
      return "allow";
    case ActionKind::kDrop:
      return "drop";
    case ActionKind::kRefuse:
      return "refuse";
    case ActionKind::kTruncate:
      return "truncate";
    case ActionKind::kRoutePool:
      return "route-pool";
  }
  return "?";
}

std::string_view matcher_kind_name(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kAny:
      return "any";
    case MatcherKind::kClientSubnet:
      return "client-subnet";
    case MatcherKind::kQnameSuffix:
      return "qname-suffix";
    case MatcherKind::kQType:
      return "qtype";
    case MatcherKind::kRateLimit:
      return "rate-limit";
  }
  return "?";
}

RuleChain::RuleChain(const ChainConfig& config,
                     const std::vector<std::string>& pool_names) {
  rules_.reserve(config.rules.size());
  for (std::size_t i = 0; i < config.rules.size(); ++i) {
    const RuleConfig& rc = config.rules[i];
    Rule rule;
    rule.name = rc.name.empty() ? "rule" + std::to_string(i) : rc.name;
    rule.matcher = rc.matcher;
    rule.negate = rc.negate;
    rule.action = rc.action;
    rule.rcode = rc.rcode;

    switch (rc.matcher) {
      case MatcherKind::kAny:
        break;
      case MatcherKind::kClientSubnet: {
        if (rc.subnets.empty()) {
          throw std::invalid_argument(rule.name +
                                      ": client-subnet rule needs subnets");
        }
        for (const std::string& text : rc.subnets) {
          rule.netmasks.add(Netmask::parse(text));
        }
        break;
      }
      case MatcherKind::kQnameSuffix: {
        if (rc.suffixes.empty()) {
          throw std::invalid_argument(rule.name +
                                      ": qname-suffix rule needs suffixes");
        }
        for (const std::string& text : rc.suffixes) {
          rule.suffixes.push_back(dns::DnsName::parse(text));
        }
        break;
      }
      case MatcherKind::kQType:
        rule.qtype = rc.qtype;
        break;
      case MatcherKind::kRateLimit: {
        if (rc.negate) {
          throw std::invalid_argument(
              rule.name + ": rate-limit rules cannot be negated");
        }
        rule.limiter = SubnetRateLimiter(rc.rate_qps, rc.burst,
                                         rc.subnet_prefix_len);
        break;
      }
    }

    if (rc.action == ActionKind::kRoutePool) {
      const auto it =
          std::find(pool_names.begin(), pool_names.end(), rc.pool);
      if (it == pool_names.end()) {
        throw std::invalid_argument(rule.name + ": unknown upstream pool '" +
                                    rc.pool + "'");
      }
      rule.pool =
          static_cast<std::uint32_t>(it - pool_names.begin());
    }
    rules_.push_back(std::move(rule));
  }
}

bool RuleChain::matches(Rule& rule, const QueryInfo& query) {
  bool hit = false;
  switch (rule.matcher) {
    case MatcherKind::kAny:
      hit = true;
      break;
    case MatcherKind::kClientSubnet:
      hit = rule.netmasks.matches(query.client);
      break;
    case MatcherKind::kQnameSuffix:
      for (const dns::DnsName& suffix : rule.suffixes) {
        if (query.qname.has_suffix(suffix)) {
          hit = true;
          break;
        }
      }
      break;
    case MatcherKind::kQType:
      hit = query.qtype == rule.qtype;
      break;
    case MatcherKind::kRateLimit:
      // Matches when over budget; the token charge is the side effect that
      // makes the budget real (compile rejects negate for this kind).
      hit = rule.limiter.over_limit(query.client, query.now);
      break;
  }
  return rule.negate ? !hit : hit;
}

Verdict RuleChain::evaluate(const QueryInfo& query) {
  ++evaluations_;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    Rule& rule = rules_[i];
    if (!matches(rule, query)) continue;
    ++rule.matches;
    Verdict verdict;
    verdict.action = rule.action;
    verdict.rcode = rule.rcode;
    verdict.pool = rule.pool;
    verdict.rule = static_cast<std::int32_t>(i);
    return verdict;
  }
  return Verdict{};
}

std::string policy_csv(const std::vector<RuleStats>& rules) {
  std::string out = "rule,matcher,action,matches\n";
  for (const RuleStats& rule : rules) {
    out += rule.name;
    out += ',';
    out += matcher_kind_name(rule.matcher);
    out += ',';
    out += action_kind_name(rule.action);
    out += ',';
    out += std::to_string(rule.matches);
    out += '\n';
  }
  return out;
}

ChainConfig scale_rate_limits(ChainConfig chain, std::uint32_t shards,
                              std::uint32_t shard_index) {
  if (shards <= 1) return chain;
  // Shard `shard_index`'s slice of an integer budget: floor share plus one
  // of the remainder tokens, so the slices sum exactly to the configured
  // value — no min-1 floor that would inflate the aggregate when shards
  // outnumber the budget.
  const auto slice = [shards, shard_index](std::uint32_t value) {
    return value / shards + (shard_index < value % shards ? 1u : 0u);
  };
  for (RuleConfig& rule : chain.rules) {
    if (rule.matcher != MatcherKind::kRateLimit) continue;
    // Clients are hashed onto shards by their full /32 source address, so
    // an address-keyed bucket's traffic all lands on one shard: that
    // shard's limiter already enforces exactly the configured budget.
    if (rule.subnet_prefix_len >= 32) continue;
    // Materialize the burst default (2x rate) against the *aggregate* rate
    // before slicing, so the default does not re-expand per shard.
    const std::uint32_t burst =
        rule.burst == 0 ? 2 * rule.rate_qps : rule.burst;
    rule.rate_qps = slice(rule.rate_qps);
    // Every shard keeps at least one burst token so its limiter stays
    // constructible and a subnet's first packet on a zero-share shard is
    // not dropped outright.
    rule.burst = std::max<std::uint32_t>(1, slice(burst));
  }
  return chain;
}

std::vector<RuleStats> RuleChain::stats() const {
  std::vector<RuleStats> out;
  out.reserve(rules_.size());
  for (const Rule& rule : rules_) {
    RuleStats s;
    s.name = rule.name;
    s.matcher = rule.matcher;
    s.action = rule.action;
    s.matches = rule.matches;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace doxlab::policy
