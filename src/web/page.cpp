#include "web/page.h"

#include <stdexcept>

namespace doxlab::web {

namespace {

/// Scale factor calibrating absolute page weight so that the *relative*
/// impact of the DNS protocol on FCP/PLT lands in the range the paper
/// reports (single-digit to low-double-digit percentages). The dependency
/// structure, not the absolute size, carries the comparison.
constexpr std::size_t kByteScale = 3;

ResourceGroup group(const char* domain, int depth, int resources,
                    std::size_t kilobytes, bool critical) {
  return ResourceGroup{dns::DnsName::parse(domain), depth, resources,
                       kilobytes * 1024 * kByteScale, critical};
}

std::vector<WebPage> build_pages() {
  std::vector<WebPage> pages;

  // wikipedia.org — landing page is a lightweight search portal; a single
  // origin serves everything (1 DNS query). The paper calls this and
  // instagram out as the pages where DNS protocol cost shows most.
  pages.push_back(WebPage{
      "wikipedia.org",
      140 * 1024,
      {
          group("www.wikipedia.org", 0, 14, 700, true),
      }});

  // instagram.com — login form; one first-party origin.
  pages.push_back(WebPage{
      "instagram.com",
      100 * 1024,
      {
          group("www.instagram.com", 0, 16, 750, true),
      }});

  // linkedin.com — login/landing with a CDN origin.
  pages.push_back(WebPage{
      "linkedin.com",
      180 * 1024,
      {
          group("www.linkedin.com", 0, 8, 400, true),
          group("static.licdn.com", 1, 14, 650, true),
      }});

  // google.com — search page plus consolidated static origins.
  pages.push_back(WebPage{
      "google.com",
      240 * 1024,
      {
          group("www.google.com", 0, 6, 200, true),
          group("www.gstatic.com", 1, 10, 350, true),
          group("apis.google.com", 2, 2, 60, false),
      }});

  // twitter.com — app shell + two CDNs + analytics.
  pages.push_back(WebPage{
      "twitter.com",
      220 * 1024,
      {
          group("twitter.com", 0, 4, 150, true),
          group("abs.twimg.com", 1, 14, 600, true),
          group("pbs.twimg.com", 1, 10, 500, false),
          group("api.twitter.com", 2, 3, 80, false),
      }});

  // facebook.com — login page with split static/graph origins.
  pages.push_back(WebPage{
      "facebook.com",
      280 * 1024,
      {
          group("www.facebook.com", 0, 6, 250, true),
          group("static.xx.fbcdn.net", 1, 16, 700, true),
          group("scontent.xx.fbcdn.net", 1, 8, 450, false),
          group("connect.facebook.net", 2, 2, 90, false),
          group("graph.facebook.com", 2, 2, 40, false),
      }});

  // apple.com — marketing page, image heavy, several first-party hosts.
  pages.push_back(WebPage{
      "apple.com",
      320 * 1024,
      {
          group("www.apple.com", 0, 10, 400, true),
          group("images.apple.com", 1, 20, 1200, true),
          group("store.storeimages.cdn-apple.com", 1, 8, 500, false),
          group("metrics.apple.com", 2, 2, 30, false),
          group("security.apple.com", 2, 1, 20, false),
          group("experiments.apple.com", 2, 1, 25, false),
      }});

  // amazon.com — storefront with media CDNs, ads and telemetry.
  pages.push_back(WebPage{
      "amazon.com",
      360 * 1024,
      {
          group("www.amazon.com", 0, 8, 350, true),
          group("images-na.ssl-images-amazon.com", 1, 24, 1400, true),
          group("m.media-amazon.com", 1, 16, 900, false),
          group("completion.amazon.com", 1, 2, 40, false),
          group("fls-na.amazon.com", 2, 2, 30, false),
          group("unagi.amazon.com", 2, 2, 35, false),
          group("aax-us-east.amazon-adsystem.com", 2, 3, 120, false),
          group("c.amazon-adsystem.com", 2, 2, 60, false),
      }});

  // microsoft.com — corporate portal: many first- and third-party origins.
  pages.push_back(WebPage{
      "microsoft.com",
      300 * 1024,
      {
          group("www.microsoft.com", 0, 8, 300, true),
          group("img-prod-cms-rt-microsoft-com.akamaized.net", 1, 18, 1100,
                true),
          group("statics-marketingsites-wcus-ms-com.akamaized.net", 1, 10,
                450, true),
          group("c.s-microsoft.com", 1, 6, 250, false),
          group("js.monitor.azure.com", 1, 2, 80, false),
          group("web.vortex.data.microsoft.com", 2, 2, 30, false),
          group("c1.microsoft.com", 2, 2, 40, false),
          group("mem.gfx.ms", 2, 2, 60, false),
          group("wcpstatic.microsoft.com", 2, 3, 110, false),
          group("privacy.microsoft.com", 2, 1, 25, false),
      }});

  // youtube.com — the most query-heavy page of the set: player, thumbnails,
  // fonts, ads and telemetry all on separate domains.
  pages.push_back(WebPage{
      "youtube.com",
      340 * 1024,
      {
          group("www.youtube.com", 0, 10, 500, true),
          group("i.ytimg.com", 1, 24, 1300, true),
          group("yt3.ggpht.com", 1, 12, 550, false),
          group("fonts.googleapis.com", 1, 2, 30, true),
          group("fonts.gstatic.com", 1, 4, 120, true),
          group("www.gstatic.com", 1, 6, 250, false),
          group("googleads.g.doubleclick.net", 2, 3, 130, false),
          group("static.doubleclick.net", 2, 2, 90, false),
          group("jnn-pa.googleapis.com", 2, 2, 40, false),
          group("play.google.com", 2, 2, 70, false),
          group("accounts.google.com", 2, 1, 30, false),
          group("www.google.com", 2, 2, 50, false),
      }});

  return pages;
}

}  // namespace

const std::vector<WebPage>& tranco_top10() {
  static const std::vector<WebPage> kPages = build_pages();
  return kPages;
}

const WebPage& page_by_name(const std::string& name) {
  for (const WebPage& page : tranco_top10()) {
    if (page.name == name) return page;
  }
  throw std::invalid_argument("unknown page: " + name);
}

}  // namespace doxlab::web
