// Webpage models for the Tranco top-10 workload.
//
// Fig. 4 of the paper sorts pages by the *average number of DNS queries per
// load* — the load-bearing page property for the DNS-protocol comparison:
// simple pages (wikipedia, instagram: 1 query) feel the per-connection
// handshake cost most; complex pages (microsoft, youtube: ~10+) amortize it.
// Each model page is a dependency tree of resource groups, one group per
// unique domain, with depth describing when the domain is discovered
// (0 = navigation target, 1 = in the HTML, 2 = via scripts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"

namespace doxlab::web {

/// Resources fetched from one domain (one DNS query + one H2 connection).
struct ResourceGroup {
  dns::DnsName domain;
  /// 0 = main document origin, 1 = discovered in HTML, 2 = discovered by
  /// depth-1 scripts.
  int depth = 1;
  /// Number of resources on this origin (affects request rounds).
  int resources = 1;
  /// Total bytes transferred from this origin.
  std::size_t total_bytes = 100 * 1024;
  /// Whether these resources gate First Contentful Paint.
  bool render_critical = false;
};

/// One modelled page.
struct WebPage {
  std::string name;                    // presentation, e.g. "wikipedia.org"
  std::size_t html_bytes = 60 * 1024;  // the main document
  std::vector<ResourceGroup> groups;   // group 0 is the document origin

  /// The Fig. 4 x-axis value: DNS queries needed per cold load.
  int dns_queries() const { return static_cast<int>(groups.size()); }
};

/// The ten modelled pages, sorted ascending by dns_queries() — the same
/// ordering Fig. 4 uses (wikipedia/instagram simplest, microsoft/youtube
/// most complex).
const std::vector<WebPage>& tranco_top10();

/// Looks a page up by name; throws std::invalid_argument if unknown.
const WebPage& page_by_name(const std::string& name);

}  // namespace doxlab::web
