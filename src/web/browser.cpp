#include "web/browser.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace doxlab::web {

namespace {
/// Segments delivered in the first slow-start round (IW10).
constexpr double kInitialWindowBytes = 10 * 1460.0;
}  // namespace

struct Browser::NavState {
  const WebPage* page = nullptr;
  std::function<void(PageLoadMetrics)> done;
  SimTime started_at = 0;
  /// Per-group completion time; nullopt while outstanding.
  std::vector<std::optional<SimTime>> group_done;
  bool html_done = false;
  SimTime html_done_at = 0;
  bool depth2_started = false;
  bool finished = false;
  int dns_retransmissions = 0;
  /// Fresh stub transport per navigation = cold browser DNS cache.
  std::unique_ptr<dox::DnsTransport> stub;
  sim::Timer timeout;
};

Browser::Browser(sim::Simulator& sim, net::UdpStack& udp, BrowserConfig config,
                 OriginRttFn origin_rtt, Rng rng)
    : sim_(sim),
      udp_(udp),
      config_(std::move(config)),
      origin_rtt_(std::move(origin_rtt)),
      rng_(std::move(rng)) {}

Browser::~Browser() = default;

SimTime Browser::transfer_time(std::size_t bytes, SimTime rtt,
                               double bandwidth_mbps) {
  if (bytes == 0) return 0;
  // Slow-start rounds needed to open the window over the payload, plus the
  // serialization time at full bandwidth.
  const double rounds =
      std::ceil(std::log2(static_cast<double>(bytes) / kInitialWindowBytes +
                          1.0));
  const double bandwidth_bytes_per_us = bandwidth_mbps * 1e6 / 8.0 / 1e6;
  const SimTime serialization =
      static_cast<SimTime>(static_cast<double>(bytes) /
                           bandwidth_bytes_per_us);
  return static_cast<SimTime>(rounds) * rtt + serialization;
}

SimTime Browser::fetch_time(const ResourceGroup& group, SimTime rtt) {
  // Requests multiplex on one H2 connection: batches of ~8 concurrent
  // requests each cost a round trip, plus the transfer itself.
  const int request_rounds = 1 + (group.resources - 1) / 8;
  SimTime t = request_rounds * rtt +
              transfer_time(group.total_bytes, rtt, config_.bandwidth_mbps);
  // Per-fetch jitter (server variance, scheduling): +-10%-ish lognormal.
  t = static_cast<SimTime>(static_cast<double>(t) *
                           rng_.lognormal(0.0, 0.08));
  return t;
}

void Browser::navigate(const WebPage& page,
                       std::function<void(PageLoadMetrics)> done) {
  auto nav = std::make_shared<NavState>();
  nav->page = &page;
  nav->done = std::move(done);
  nav->started_at = sim_.now();
  nav->group_done.resize(page.groups.size());

  dox::TransportDeps deps;
  deps.sim = &sim_;
  deps.udp = &udp_;
  dox::TransportOptions options;
  options.resolver = config_.stub_resolver;
  options.udp_retry_timeout = config_.dns_retry_timeout;
  options.udp_max_attempts = config_.dns_max_attempts;
  options.query_timeout = config_.load_timeout;
  nav->stub = dox::make_transport(dox::DnsProtocol::kDoUdp, deps, options);

  active_ = nav;
  nav->timeout = sim_.schedule(config_.load_timeout, [this, nav] {
    fail_navigation(nav, util::Error::timeout("page load timed out"));
  });

  // The navigation starts with the document origin (group 0).
  start_group(nav, 0);
}

void Browser::resolve_domain(const std::shared_ptr<NavState>& nav,
                             const dns::DnsName& domain,
                             std::function<void(util::Error)> done) {
  nav->stub->resolve(
      dns::Question{domain, dns::RRType::kA, dns::RRClass::kIN},
      [nav, done = std::move(done)](dox::QueryResult result) {
        if (nav->finished) return;
        nav->dns_retransmissions += result.udp_retransmissions;
        if (!result.ok()) {
          done(result.error());
          return;
        }
        if (result.response.rcode != dns::RCode::kNoError) {
          done(util::Error::rcode_error(
              static_cast<std::uint8_t>(result.response.rcode),
              "stub returned " +
                  std::string(dns::rcode_name(result.response.rcode))));
          return;
        }
        done(util::Error::none());
      });
}

void Browser::start_group(const std::shared_ptr<NavState>& nav,
                          std::size_t index) {
  const ResourceGroup& group = nav->page->groups[index];
  resolve_domain(nav, group.domain, [this, nav, index](util::Error error) {
    if (nav->finished) return;
    if (!error.ok()) {
      error.detail = "DNS resolution failed for group " +
                     std::to_string(index) + ": " + error.detail;
      fail_navigation(nav, std::move(error));
      return;
    }
    const ResourceGroup& group = nav->page->groups[index];
    const SimTime rtt = origin_rtt_(group.domain);
    // H2 connection setup: TCP + TLS 1.3 = 2 RTT (identical across DNS
    // protocols, so it cancels in the relative comparison).
    const SimTime connect = 2 * rtt;
    if (index == 0) {
      // Main document: request + server think + HTML transfer; the document
      // origin's other resources follow once the HTML is parsed.
      const SimTime fetch =
          rtt + config_.server_think +
          transfer_time(nav->page->html_bytes, rtt, config_.bandwidth_mbps);
      sim_.schedule(connect + fetch, [this, nav] { html_finished(nav); });
      return;
    }
    sim_.schedule(connect + fetch_time(group, rtt), [this, nav, index] {
      group_finished(nav, index);
    });
  });
}

void Browser::html_finished(const std::shared_ptr<NavState>& nav) {
  if (nav->finished) return;
  nav->html_done = true;
  nav->html_done_at = sim_.now();

  // HTML parsed: all depth-1 origins are discovered; their DNS queries go
  // out in parallel (this is where the DoT in-flight bug triggers).
  for (std::size_t i = 0; i < nav->page->groups.size(); ++i) {
    if (nav->page->groups[i].depth == 1) start_group(nav, i);
  }

  // The document origin's own subresources reuse the established
  // connection: no DNS query, no connection setup.
  const ResourceGroup& document = nav->page->groups[0];
  const SimTime rtt = origin_rtt_(document.domain);
  sim_.schedule(fetch_time(document, rtt),
                [this, nav] { group_finished(nav, 0); });
}

void Browser::group_finished(const std::shared_ptr<NavState>& nav,
                             std::size_t index) {
  if (nav->finished) return;
  nav->group_done[index] = sim_.now();

  // Depth-2 origins start once every depth<=1 group has finished (script
  // execution model).
  if (!nav->depth2_started) {
    bool shallow_done = true;
    for (std::size_t i = 0; i < nav->page->groups.size(); ++i) {
      if (nav->page->groups[i].depth <= 1 && !nav->group_done[i]) {
        shallow_done = false;
        break;
      }
    }
    if (shallow_done) {
      nav->depth2_started = true;
      bool any = false;
      for (std::size_t i = 0; i < nav->page->groups.size(); ++i) {
        if (nav->page->groups[i].depth == 2) {
          start_group(nav, i);
          any = true;
        }
      }
      (void)any;
    }
  }

  maybe_finish(nav);
}

void Browser::maybe_finish(const std::shared_ptr<NavState>& nav) {
  for (const auto& done : nav->group_done) {
    if (!done) return;
  }
  nav->finished = true;
  nav->timeout.cancel();

  PageLoadMetrics metrics;
  metrics.success = true;
  metrics.dns_queries = nav->page->dns_queries();
  metrics.dns_retransmissions = nav->dns_retransmissions;

  // FCP: html + critical depth<=1 groups + render delay.
  SimTime critical_done = nav->html_done_at;
  for (std::size_t i = 0; i < nav->page->groups.size(); ++i) {
    const ResourceGroup& group = nav->page->groups[i];
    if (group.render_critical && group.depth <= 1) {
      critical_done = std::max(critical_done, *nav->group_done[i]);
    }
  }
  metrics.fcp = critical_done - nav->started_at + config_.render_delay;

  SimTime last = 0;
  for (const auto& done : nav->group_done) last = std::max(last, *done);
  metrics.plt = last - nav->started_at + config_.onload_delay;
  // onLoad never fires before first paint.
  metrics.plt = std::max(metrics.plt, metrics.fcp);

  auto cb = std::move(nav->done);
  if (active_ == nav) active_.reset();
  if (cb) cb(std::move(metrics));
}

void Browser::fail_navigation(const std::shared_ptr<NavState>& nav,
                              util::Error error) {
  if (nav->finished) return;
  nav->finished = true;
  nav->timeout.cancel();
  PageLoadMetrics metrics;
  metrics.success = false;
  metrics.error = std::move(error);
  metrics.dns_queries = nav->page->dns_queries();
  metrics.dns_retransmissions = nav->dns_retransmissions;
  auto cb = std::move(nav->done);
  if (active_ == nav) active_.reset();
  if (cb) cb(std::move(metrics));
}

}  // namespace doxlab::web
