// Browser page-load model (the Selenium+Chromium stand-in).
//
// The model keeps everything that does *not* depend on the DNS protocol
// deterministic and identical across protocols — web-server RTTs, H2
// connection setup (fixed 2 RTT), slow-start-shaped transfer times — and
// routes every DNS lookup through the local stub resolver (the DnsProxy),
// with Chromium's 5-second application-layer retry. The page's dependency
// structure (document -> HTML-discovered origins -> script-discovered
// origins) decides how many DNS round trips sit on the critical path, which
// is exactly the mechanism behind Fig. 3 and Fig. 4 of the paper.
//
// Metrics follow the paper's definitions:
//   FCP — first contentful paint: render-critical resources of the document
//         and depth-1 origins are done and a render delay has elapsed.
//   PLT — LoadEventStart-NavigationStart: all resources done plus onload.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "dox/transport.h"
#include "net/udp.h"
#include "util/error.h"
#include "util/rng.h"
#include "web/page.h"

namespace doxlab::web {

struct BrowserConfig {
  /// The local stub resolver (the DnsProxy's listener).
  net::Endpoint stub_resolver;
  /// Downstream bandwidth for resource transfers.
  double bandwidth_mbps = 16.0;  // effective per-page goodput (calibration)
  /// Layout/paint time after the critical resources arrive.
  SimTime render_delay = 30 * kMillisecond;
  /// onLoad dispatch after the last resource.
  SimTime onload_delay = 15 * kMillisecond;
  /// Server-side HTML generation time.
  SimTime server_think = 25 * kMillisecond;
  /// Chromium's application-layer DNS retry (resolv.conf style): 5 s.
  SimTime dns_retry_timeout = 5 * kSecond;
  int dns_max_attempts = 3;
  /// Whole-navigation timeout.
  SimTime load_timeout = 120 * kSecond;
};

struct PageLoadMetrics {
  bool success = false;
  /// Failure cause when !success (kNone otherwise).
  util::Error error;
  SimTime fcp = 0;
  SimTime plt = 0;
  int dns_queries = 0;
  int dns_retransmissions = 0;
};

class Browser {
 public:
  /// Round-trip time from this client to the web origin `domain`
  /// (deterministic per vantage point + origin; the testbed provides it).
  using OriginRttFn = std::function<SimTime(const dns::DnsName&)>;

  /// `udp` is the client machine's UDP stack (used for stub queries).
  Browser(sim::Simulator& sim, net::UdpStack& udp, BrowserConfig config,
          OriginRttFn origin_rtt, Rng rng);
  ~Browser();

  Browser(const Browser&) = delete;
  Browser& operator=(const Browser&) = delete;

  /// Performs one cold-start navigation. The callback fires exactly once.
  /// Only one navigation may be active at a time per Browser.
  void navigate(const WebPage& page,
                std::function<void(PageLoadMetrics)> done);

  /// Transfer-time model, exposed for tests: slow-start rounds + bandwidth.
  static SimTime transfer_time(std::size_t bytes, SimTime rtt,
                               double bandwidth_mbps);

 private:
  struct NavState;

  /// `done` receives Error::none() on a usable answer, or the typed cause
  /// (transport failure, or kRcode for a non-NOERROR answer).
  void resolve_domain(const std::shared_ptr<NavState>& nav,
                      const dns::DnsName& domain,
                      std::function<void(util::Error)> done);
  void start_group(const std::shared_ptr<NavState>& nav, std::size_t index);
  void html_finished(const std::shared_ptr<NavState>& nav);
  void group_finished(const std::shared_ptr<NavState>& nav,
                      std::size_t index);
  void maybe_finish(const std::shared_ptr<NavState>& nav);
  void fail_navigation(const std::shared_ptr<NavState>& nav,
                       util::Error error);
  SimTime fetch_time(const ResourceGroup& group, SimTime rtt);

  sim::Simulator& sim_;
  net::UdpStack& udp_;
  BrowserConfig config_;
  OriginRttFn origin_rtt_;
  Rng rng_;
  std::shared_ptr<NavState> active_;
};

}  // namespace doxlab::web
