// TCP connection model.
//
// Implements the pieces of TCP that shape the paper's measurements:
//   * 3-way handshake (1 RTT before first data byte) and its byte cost
//     (SYN/SYN-ACK carry 20 bytes of options, established segments carry
//     12 bytes of timestamp options),
//   * TCP Fast Open (RFC 7413) as a switchable option — the paper finds no
//     resolver supports it, and the ablation bench turns it on,
//   * reliable in-order delivery with out-of-order reassembly (the fabric
//     jitters per packet, so reordering happens),
//   * RFC 6298 retransmission timing: 1 s initial RTO, SRTT/RTTVAR tracking,
//     exponential backoff — this is the "transport layer retransmission with
//     initial timeout of 1 second" the paper contrasts with DoUDP's 5 s
//     application-layer retry,
//   * graceful close (FIN) and abort (RST), since connection teardown bytes
//     are part of the paper's per-query size accounting.
//
// Sequence numbers are modelled as 64-bit logical stream offsets (SYN
// occupies seq 0, data starts at 1, FIN occupies the seq after the last data
// byte); there is no 32-bit wraparound to emulate because connections in the
// study carry at most a few kilobytes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "cc/cc.h"
#include "net/network.h"
#include "util/error.h"
#include "util/types.h"

namespace doxlab::tcp {

/// Header sizes used for IP-payload accounting.
inline constexpr std::size_t kSynHeaderBytes = 40;  // 20 base + 20 options
inline constexpr std::size_t kSegHeaderBytes = 32;  // 20 base + 12 TS option

struct TcpOptions {
  std::size_t mss = 1460;
  /// Initial congestion window in segments (RFC 6928).
  std::size_t initial_cwnd_segments = 10;
  /// RFC 6298: RTO before any RTT sample.
  SimTime initial_rto = 1 * kSecond;
  /// Lower bound for computed RTO (Linux-style 200 ms).
  SimTime min_rto = 200 * kMillisecond;
  /// Connection aborts after this many consecutive RTOs on one segment.
  int max_retransmits = 8;
  /// Client side: attempt TCP Fast Open (requires a cached cookie and a
  /// server that accepts TFO).
  bool enable_tfo = false;
  /// Congestion-control algorithm (shared src/cc module). The default is
  /// the seed-faithful legacy mode — pure slow start, collapse to one
  /// segment, no fast retransmit — so pinned artifacts stay byte-identical;
  /// adverse-path scenarios opt into kNewReno or kCubic.
  cc::CcAlgorithm congestion_algorithm = cc::CcAlgorithm::kLegacySlowStart;
  /// Record the (time, cwnd, phase) trace on the controller (benches/tests).
  bool cc_trace = false;
};

class TcpStack;

/// Connection state, exposed for tests.
enum class TcpState {
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait,    // we sent FIN, waiting for peer FIN/ACK
  kCloseWait,  // peer sent FIN, we have not closed yet
  kLastAck,    // peer FIN seen and our FIN sent
  kClosed,
};

/// A reliable byte-stream connection. Obtained from TcpStack::connect() or
/// a listener's accept callback; lifetime is managed by shared_ptr (the
/// stack keeps one reference until the connection closes).
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  using ConnectedHandler = std::function<void()>;
  using DataHandler = std::function<void(std::span<const std::uint8_t>)>;
  /// Close reason: kNone for a clean FIN exchange, kConnRefused for an RST
  /// answering our SYN, kConnReset for an RST on an established connection
  /// (or a local abort), kTimeout for retransmit exhaustion.
  using ClosedHandler = std::function<void(const util::Error&)>;

  /// Queues stream bytes for transmission (before or after establishment;
  /// pre-handshake bytes flush when the handshake completes, or ride the SYN
  /// when TFO is active). When the stream buffer is empty and the bytes fit
  /// in one in-window segment — the steady state for DoT/DoH records — the
  /// buffer becomes the segment payload directly, with no stream copy.
  void send(util::Buffer data);
  void send(std::vector<std::uint8_t> data) {
    send(util::Buffer::copy_of(data));
  }

  /// Graceful close: FIN after all queued data.
  void close();

  /// Immediate teardown with RST.
  void abort();

  void on_connected(ConnectedHandler h) { on_connected_ = std::move(h); }
  void on_data(DataHandler h) { on_data_ = std::move(h); }
  void on_closed(ClosedHandler h) { on_closed_ = std::move(h); }
  /// Fires once when the peer's FIN is received in order (the connection
  /// enters CLOSE_WAIT). Servers typically close() in response.
  void on_remote_fin(ConnectedHandler h) { on_remote_fin_ = std::move(h); }

  TcpState state() const { return state_; }
  bool established() const {
    return state_ == TcpState::kEstablished || state_ == TcpState::kFinWait ||
           state_ == TcpState::kCloseWait || state_ == TcpState::kLastAck;
  }
  net::Endpoint local() const { return local_; }
  net::Endpoint remote() const { return remote_; }
  bool is_client() const { return is_client_; }

  /// IP payload bytes (TCP headers + payload) sent/received on this
  /// connection, including retransmissions and pure ACKs.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  /// Time on_connected fired; nullopt before establishment.
  std::optional<SimTime> connected_at() const { return connected_at_; }

  /// Latest smoothed RTT estimate; nullopt before the first sample.
  std::optional<SimTime> srtt() const { return srtt_; }

  /// Total retransmitted segments (diagnostics / tests).
  std::uint64_t retransmit_count() const { return retransmits_; }

  /// Congestion controller state (cwnd/ssthresh/phase/trace).
  const cc::CongestionController& congestion() const { return cc_; }
  std::size_t cwnd_bytes() const { return cc_.cwnd(); }
  /// Fast retransmits triggered by triple duplicate ACKs (vs RTO fires,
  /// which `retransmit_count` also includes).
  std::uint64_t fast_retransmit_count() const { return fast_retransmits_; }
  /// Current RTO backoff shift (clears when an ack advances snd_una).
  int rto_backoff() const { return backoff_; }

  /// True if this connection's first flight carried TFO data.
  bool used_tfo() const { return used_tfo_; }

 private:
  friend class TcpStack;

  struct Segment {
    std::uint64_t seq = 0;
    std::uint64_t ack = 0;
    bool syn = false;
    bool fin = false;
    bool rst = false;
    bool has_ack = false;
    bool tfo = false;  // SYN carries a fast-open cookie
    util::Buffer payload;  // shared (refcounted) with packet + retransmit state

    std::uint64_t seq_span() const {
      return payload.size() + (syn ? 1 : 0) + (fin ? 1 : 0);
    }
  };

  struct OutstandingSegment {
    Segment segment;
    SimTime first_sent = 0;
    /// RTO-driven (re)transmissions only — feeds the exhaustion abort.
    int transmissions = 0;
    /// Set by any retransmission (RTO or fast retransmit): the segment's
    /// ack is ambiguous, so Karn forbids sampling RTT from it.
    bool retransmitted = false;
    sim::Timer rto_timer;
  };

  TcpConnection(TcpStack& stack, net::Endpoint local, net::Endpoint remote,
                TcpOptions options, bool is_client);

  void start_connect();
  void accept_syn(const Segment& syn);
  void handle_segment(Segment segment);
  void handle_ack(std::uint64_t ack, bool pure_ack);
  void deliver_in_order();
  void pump_send();
  void transmit(Segment segment, bool count_outstanding);
  void retransmit_front();
  void fast_retransmit();
  void resend_front();
  void arm_rto();
  void update_rtt(SimTime sample);
  SimTime current_rto() const;
  void send_pure_ack();
  void enter_established();
  void finish(util::Error error);
  void maybe_send_fin();

  TcpStack* stack_;
  net::Endpoint local_;
  net::Endpoint remote_;
  TcpOptions options_;
  bool is_client_;
  TcpState state_ = TcpState::kSynSent;

  // Send side.
  std::vector<std::uint8_t> send_buffer_;  // not yet segmented
  std::uint64_t snd_nxt_ = 0;              // next logical seq to send
  std::uint64_t snd_una_ = 0;              // oldest unacked seq
  std::deque<OutstandingSegment> outstanding_;
  cc::CongestionController cc_;
  /// Duplicate-ACK counter for fast retransmit (RFC 5681 §3.2).
  int dup_acks_ = 0;
  /// NewReno recovery point (RFC 6582): snd_nxt_ when the current loss
  /// episode started. Acks below it are partial acks — the next segment
  /// died in the same flight and is retransmitted immediately.
  std::uint64_t recover_ = 0;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool syn_sent_ = false;

  // Receive side.
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, util::Buffer> reassembly_;
  bool peer_fin_seen_ = false;
  std::optional<std::uint64_t> peer_fin_seq_;

  // RTT estimation (RFC 6298).
  std::optional<SimTime> srtt_;
  SimTime rttvar_ = 0;
  int backoff_ = 0;

  ConnectedHandler on_connected_;
  DataHandler on_data_;
  ClosedHandler on_closed_;
  ConnectedHandler on_remote_fin_;
  bool remote_fin_notified_ = false;

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t fast_retransmits_ = 0;
  std::optional<SimTime> connected_at_;
  bool used_tfo_ = false;
};

/// A listening socket.
class TcpListener {
 public:
  using AcceptHandler =
      std::function<void(const std::shared_ptr<TcpConnection>&)>;

  void on_accept(AcceptHandler h) { on_accept_ = std::move(h); }

  /// Whether this listener honours TCP Fast Open SYN data.
  void set_tfo_enabled(bool enabled) { tfo_enabled_ = enabled; }
  bool tfo_enabled() const { return tfo_enabled_; }

  std::uint16_t port() const { return port_; }

 private:
  friend class TcpStack;
  explicit TcpListener(std::uint16_t port) : port_(port) {}
  std::uint16_t port_;
  bool tfo_enabled_ = false;
  AcceptHandler on_accept_;
};

/// Per-host TCP: demultiplexes segments to connections and listeners.
/// Construct at most one per host.
class TcpStack {
 public:
  explicit TcpStack(net::Host& host);
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Opens a listener; throws std::invalid_argument if the port is taken.
  TcpListener& listen(std::uint16_t port);

  /// Initiates a client connection from an ephemeral port.
  std::shared_ptr<TcpConnection> connect(const net::Endpoint& remote,
                                         TcpOptions options = {});

  /// Whether this client host holds a TFO cookie for `server` (cookies are
  /// learned out of band in the model; the study never exercises them
  /// because no resolver enables TFO).
  void learn_tfo_cookie(net::IpAddress server) { tfo_cookies_.insert(server); }
  bool has_tfo_cookie(net::IpAddress server) const {
    return tfo_cookies_.contains(server);
  }

  /// When enabled, a SYN to a port with no listener is answered with an RST
  /// (the initiator sees kConnRefused). Off by default: the model's default
  /// is to drop silently, which the initiator experiences as retransmit +
  /// timeout — keeping baseline timings unchanged. Fault-injection tests
  /// turn this on to exercise the refused path.
  void set_refuse_unbound(bool on) { refuse_unbound_ = on; }
  bool refuse_unbound() const { return refuse_unbound_; }

  net::Host& host() { return *host_; }
  sim::Simulator& simulator() { return host_->network().simulator(); }

 private:
  friend class TcpConnection;
  using FlowKey = std::pair<net::Endpoint, net::Endpoint>;  // local, remote

  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      std::size_t a = std::hash<net::Endpoint>()(k.first);
      std::size_t b = std::hash<net::Endpoint>()(k.second);
      return a ^ (b * 0x9E3779B97F4A7C15ull);
    }
  };

  void on_packet(net::Packet packet);
  void send_segment(const net::Endpoint& from, const net::Endpoint& to,
                    const TcpConnection::Segment& segment);
  void remove_connection(const FlowKey& key);
  std::uint16_t allocate_ephemeral_port();

  net::Host* host_;
  std::uint16_t next_ephemeral_ = 49152;
  /// Local ports of live connections (fast ephemeral allocation).
  std::multiset<std::uint16_t> ports_in_use_;
  std::unordered_map<std::uint16_t, std::unique_ptr<TcpListener>> listeners_;
  std::unordered_map<FlowKey, std::shared_ptr<TcpConnection>, FlowKeyHash>
      connections_;
  std::set<net::IpAddress> tfo_cookies_;
  bool refuse_unbound_ = false;
};

}  // namespace doxlab::tcp
