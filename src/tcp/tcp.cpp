#include "tcp/tcp.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/logging.h"

namespace doxlab::tcp {

// ---------------------------------------------------------------- TcpStack

TcpStack::TcpStack(net::Host& host) : host_(&host) {
  host_->set_protocol_handler(
      net::kProtoTcp, [this](net::Packet p) { on_packet(std::move(p)); });
}

TcpListener& TcpStack::listen(std::uint16_t port) {
  auto [it, inserted] = listeners_.try_emplace(
      port, std::unique_ptr<TcpListener>(new TcpListener(port)));
  if (!inserted) {
    throw std::invalid_argument("TCP port already listening: " +
                                std::to_string(port));
  }
  return *it->second;
}

std::uint16_t TcpStack::allocate_ephemeral_port() {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ =
        (next_ephemeral_ >= 65535) ? 49152 : std::uint16_t(next_ephemeral_ + 1);
    if (!ports_in_use_.contains(candidate)) return candidate;
  }
  throw std::runtime_error("ephemeral TCP port space exhausted");
}

std::shared_ptr<TcpConnection> TcpStack::connect(const net::Endpoint& remote,
                                                 TcpOptions options) {
  net::Endpoint local{host_->address(), allocate_ephemeral_port()};
  auto conn = std::shared_ptr<TcpConnection>(
      new TcpConnection(*this, local, remote, options, /*is_client=*/true));
  connections_[FlowKey{local, remote}] = conn;
  ports_in_use_.insert(local.port);
  // Defer the SYN by one event-loop turn so the caller can queue data (and
  // handlers) first — that is how TFO early data rides the SYN.
  simulator().schedule(0, [conn] {
    if (conn->state() == TcpState::kSynSent && !conn->syn_sent_) {
      conn->start_connect();
    }
  });
  return conn;
}

void TcpStack::send_segment(const net::Endpoint& from, const net::Endpoint& to,
                            const TcpConnection::Segment& segment) {
  net::Packet packet;
  packet.src = from;
  packet.dst = to;
  packet.protocol = net::kProtoTcp;
  packet.header_bytes = segment.syn ? kSynHeaderBytes : kSegHeaderBytes;
  packet.payload = segment.payload;
  packet.meta = std::make_shared<TcpConnection::Segment>(segment);
  host_->network().send(std::move(packet));
}

void TcpStack::remove_connection(const FlowKey& key) {
  if (connections_.erase(key) > 0) {
    auto it = ports_in_use_.find(key.first.port);
    if (it != ports_in_use_.end()) ports_in_use_.erase(it);
  }
}

void TcpStack::on_packet(net::Packet packet) {
  auto meta =
      std::static_pointer_cast<const TcpConnection::Segment>(packet.meta);
  if (!meta) return;
  TcpConnection::Segment segment = *meta;
  segment.payload = std::move(packet.payload);

  const FlowKey key{packet.dst, packet.src};  // local, remote
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    // Account received bytes on the owning connection.
    it->second->bytes_received_ += packet.header_bytes + segment.payload.size();
    it->second->handle_segment(std::move(segment));
    return;
  }

  if (segment.syn && !segment.has_ack) {
    auto lit = listeners_.find(packet.dst.port);
    if (lit != listeners_.end()) {
      auto conn = std::shared_ptr<TcpConnection>(new TcpConnection(
          *this, packet.dst, packet.src, TcpOptions{}, /*is_client=*/false));
      connections_[key] = conn;
      conn->bytes_received_ += packet.header_bytes + segment.payload.size();
      if (lit->second->on_accept_) lit->second->on_accept_(conn);
      const bool honour_tfo = lit->second->tfo_enabled() && segment.tfo;
      if (!honour_tfo) segment.payload.clear();  // TFO data ignored
      conn->accept_syn(segment);
      return;
    }
  }
  // No matching flow and not a connectable SYN. Real stacks answer RST;
  // by default we silently drop, which the initiator experiences as
  // retransmit + timeout. With refuse_unbound set, answer the RST so the
  // initiator sees connection-refused.
  if (refuse_unbound_ && segment.syn && !segment.has_ack) {
    TcpConnection::Segment rst;
    rst.rst = true;
    rst.has_ack = true;
    rst.seq = 0;
    rst.ack = segment.seq + segment.seq_span();
    send_segment(packet.dst, packet.src, rst);
  }
}

// ----------------------------------------------------------- TcpConnection

TcpConnection::TcpConnection(TcpStack& stack, net::Endpoint local,
                             net::Endpoint remote, TcpOptions options,
                             bool is_client)
    : stack_(&stack),
      local_(local),
      remote_(remote),
      options_(options),
      is_client_(is_client),
      state_(is_client ? TcpState::kSynSent : TcpState::kSynReceived) {
  cc::CcConfig cc_config;
  cc_config.algorithm = options_.congestion_algorithm;
  cc_config.mss = options_.mss;
  cc_config.initial_window_segments = options_.initial_cwnd_segments;
  cc_config.trace = options_.cc_trace;
  cc_ = cc::CongestionController(cc_config);
}

void TcpConnection::start_connect() {
  Segment syn;
  syn.syn = true;
  syn.seq = 0;
  if (options_.enable_tfo && stack_->has_tfo_cookie(remote_.address)) {
    syn.tfo = true;
    used_tfo_ = true;
    // Carry up to one MSS of early data on the SYN.
    const std::size_t early = std::min(send_buffer_.size(), options_.mss);
    syn.payload = util::Buffer::copy_of(
        std::span<const std::uint8_t>(send_buffer_.data(), early));
    send_buffer_.erase(send_buffer_.begin(),
                       send_buffer_.begin() + static_cast<long>(early));
  }
  snd_nxt_ = 1 + syn.payload.size();
  syn_sent_ = true;
  transmit(std::move(syn), /*count_outstanding=*/true);
}

void TcpConnection::accept_syn(const Segment& syn) {
  // Server side: SYN consumed seq 0 (plus any accepted TFO payload).
  rcv_nxt_ = 1;
  Segment synack;
  synack.syn = true;
  synack.has_ack = true;
  synack.seq = 0;
  snd_nxt_ = 1;

  if (!syn.payload.empty()) {
    // Accepted TFO early data: deliver after establishment below.
    rcv_nxt_ += syn.payload.size();
    used_tfo_ = true;
  }
  synack.ack = rcv_nxt_;
  transmit(std::move(synack), /*count_outstanding=*/true);

  if (!syn.payload.empty() && on_data_) {
    on_data_(syn.payload.view());
  }
}

void TcpConnection::enter_established() {
  if (state_ != TcpState::kSynSent && state_ != TcpState::kSynReceived) return;
  state_ = TcpState::kEstablished;
  connected_at_ = stack_->simulator().now();
  if (on_connected_) on_connected_();
  pump_send();
}

void TcpConnection::send(util::Buffer data) {
  if (state_ == TcpState::kClosed || fin_queued_) return;
  const bool may_pump = established() || state_ == TcpState::kSynReceived;
  // Zero-copy fast path: with nothing queued and the bytes fitting one
  // in-window segment, the buffer ships as the segment payload directly —
  // byte-for-byte what pump_send() would have produced from the stream
  // buffer for the same input.
  if (may_pump && send_buffer_.empty() && !data.empty()) {
    const std::uint64_t in_flight = snd_nxt_ - snd_una_;
    if (in_flight < cc_.cwnd() && data.size() <= options_.mss &&
        data.size() <= cc_.cwnd() - in_flight) {
      Segment seg;
      seg.seq = snd_nxt_;
      seg.has_ack = true;
      seg.ack = rcv_nxt_;
      seg.payload = std::move(data);
      snd_nxt_ += seg.payload.size();
      transmit(std::move(seg), /*count_outstanding=*/true);
      return;
    }
  }
  send_buffer_.insert(send_buffer_.end(), data.data(),
                      data.data() + data.size());
  if (may_pump) pump_send();
}

void TcpConnection::close() {
  if (state_ == TcpState::kClosed || fin_queued_) return;
  fin_queued_ = true;
  if (established()) {
    pump_send();
    maybe_send_fin();
  }
}

void TcpConnection::abort() {
  if (state_ == TcpState::kClosed) return;
  Segment rst;
  rst.rst = true;
  rst.seq = snd_nxt_;
  rst.has_ack = true;
  rst.ack = rcv_nxt_;
  transmit(std::move(rst), /*count_outstanding=*/false);
  finish(util::Error::conn_reset("local abort"));
}

void TcpConnection::pump_send() {
  // SYN_RECEIVED may transmit too: a TFO server answers the SYN's early
  // data right after its SYN-ACK (RFC 7413 §4.2).
  if (!established() && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kSynReceived) {
    return;
  }
  // Bytes currently in flight.
  std::uint64_t in_flight = snd_nxt_ - snd_una_;
  while (!send_buffer_.empty() && in_flight < cc_.cwnd()) {
    const std::size_t chunk = std::min(
        {send_buffer_.size(), options_.mss,
         static_cast<std::size_t>(cc_.cwnd() - in_flight)});
    Segment seg;
    seg.seq = snd_nxt_;
    seg.has_ack = true;
    seg.ack = rcv_nxt_;
    seg.payload = util::Buffer::copy_of(
        std::span<const std::uint8_t>(send_buffer_.data(), chunk));
    send_buffer_.erase(send_buffer_.begin(),
                       send_buffer_.begin() + static_cast<long>(chunk));
    snd_nxt_ += chunk;
    in_flight += chunk;
    transmit(std::move(seg), /*count_outstanding=*/true);
  }
  maybe_send_fin();
}

void TcpConnection::maybe_send_fin() {
  if (!fin_queued_ || fin_sent_ || !send_buffer_.empty()) return;
  Segment fin;
  fin.fin = true;
  fin.has_ack = true;
  fin.seq = snd_nxt_;
  fin.ack = rcv_nxt_;
  snd_nxt_ += 1;
  fin_sent_ = true;
  if (state_ == TcpState::kEstablished) state_ = TcpState::kFinWait;
  else if (state_ == TcpState::kCloseWait) state_ = TcpState::kLastAck;
  transmit(std::move(fin), /*count_outstanding=*/true);
}

void TcpConnection::transmit(Segment segment, bool count_outstanding) {
  const std::size_t header =
      segment.syn ? kSynHeaderBytes : kSegHeaderBytes;
  bytes_sent_ += header + segment.payload.size();
  stack_->send_segment(local_, remote_, segment);
  if (count_outstanding && segment.seq_span() > 0) {
    OutstandingSegment out;
    out.segment = std::move(segment);
    out.first_sent = stack_->simulator().now();
    out.transmissions = 1;
    outstanding_.push_back(std::move(out));
    arm_rto();
  }
}

SimTime TcpConnection::current_rto() const {
  SimTime base;
  if (srtt_) {
    base = std::max(options_.min_rto, *srtt_ + 4 * rttvar_);
  } else {
    base = options_.initial_rto;
  }
  return base << std::min(backoff_, 12);
}

void TcpConnection::arm_rto() {
  if (outstanding_.empty()) return;
  OutstandingSegment& front = outstanding_.front();
  if (front.rto_timer.armed()) return;
  // Weak capture: the timer lives inside outstanding_, so a shared self
  // here would keep the connection alive through its own member (a cycle).
  // The stack owns the connection until it closes, which cancels the timer.
  std::weak_ptr<TcpConnection> weak = weak_from_this();
  front.rto_timer = stack_->simulator().schedule(current_rto(), [weak]() {
    if (auto self = weak.lock()) self->retransmit_front();
  });
}

void TcpConnection::retransmit_front() {
  if (state_ == TcpState::kClosed || outstanding_.empty()) return;
  OutstandingSegment& front = outstanding_.front();
  if (front.transmissions > options_.max_retransmits) {
    finish(util::Error::timeout("TCP retransmit exhaustion"));
    return;
  }
  ++retransmits_;
  ++backoff_;
  // RTO loss response (RFC 5681 §3.1): ssthresh = cwnd/2, window collapses
  // to the loss window, slow start restarts.
  cc_.on_rto(stack_->simulator().now());
  dup_acks_ = 0;
  recover_ = snd_nxt_;
  Segment copy = front.segment;
  copy.has_ack = state_ != TcpState::kSynSent;
  copy.ack = rcv_nxt_;
  front.transmissions += 1;
  front.retransmitted = true;
  const std::size_t header = copy.syn ? kSynHeaderBytes : kSegHeaderBytes;
  bytes_sent_ += header + copy.payload.size();
  stack_->send_segment(local_, remote_, copy);
  std::weak_ptr<TcpConnection> weak = weak_from_this();
  front.rto_timer = stack_->simulator().schedule(current_rto(), [weak]() {
    if (auto self = weak.lock()) self->retransmit_front();
  });
}

void TcpConnection::update_rtt(SimTime sample) {
  // RFC 6298 §2.2-2.3.
  if (!srtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const SimTime err = std::abs(*srtt_ - sample);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * *srtt_ + sample) / 8;
  }
}

void TcpConnection::fast_retransmit() {
  if (state_ == TcpState::kClosed || outstanding_.empty()) return;
  // One window reduction per recovery episode: a dup-ack burst for a packet
  // sent before recovery started repairs the same episode.
  cc_.on_loss(outstanding_.front().first_sent, stack_->simulator().now());
  ++fast_retransmits_;
  recover_ = snd_nxt_;
  resend_front();
  // The RTO timer keeps running: fast retransmit is not a timeout and must
  // not add backoff, but an unanswered repair still escalates to the RTO.
}

/// Re-sends the oldest outstanding segment without touching the RTO timer,
/// backoff, or the congestion controller (callers decide the loss response).
void TcpConnection::resend_front() {
  OutstandingSegment& front = outstanding_.front();
  ++retransmits_;
  front.retransmitted = true;
  Segment copy = front.segment;
  copy.has_ack = state_ != TcpState::kSynSent;
  copy.ack = rcv_nxt_;
  const std::size_t header = copy.syn ? kSynHeaderBytes : kSegHeaderBytes;
  bytes_sent_ += header + copy.payload.size();
  stack_->send_segment(local_, remote_, copy);
}

void TcpConnection::handle_ack(std::uint64_t ack, bool pure_ack) {
  if (ack <= snd_una_) {
    // RFC 5681 §3.2: three duplicate ACKs for the oldest unacked byte mean
    // the segment after them very likely died — repair without waiting for
    // the RTO. Only data-less segments count; a peer's data segments repeat
    // the ack number without signalling loss.
    if (cc_.fast_recovery_enabled() && pure_ack && ack == snd_una_ &&
        !outstanding_.empty() && snd_nxt_ > snd_una_) {
      if (++dup_acks_ == 3) fast_retransmit();
    }
    return;
  }
  const std::uint64_t newly_acked = ack - snd_una_;
  snd_una_ = ack;
  dup_acks_ = 0;
  // Forward progress clears the exponential backoff (RFC 6298 §5.7); RTT
  // *samples*, by contrast, only ever come from fresh segments below.
  backoff_ = 0;

  SimTime newest_sent_at = stack_->simulator().now();
  while (!outstanding_.empty()) {
    OutstandingSegment& front = outstanding_.front();
    const std::uint64_t end = front.segment.seq + front.segment.seq_span();
    if (end > ack) break;
    front.rto_timer.cancel();
    newest_sent_at = front.first_sent;
    if (!front.retransmitted) {
      // Karn's algorithm: only sample RTT from unambiguous (never
      // retransmitted) segments — the ack for a retransmission cannot be
      // matched to a send time, and a sample taken from it would poison
      // SRTT/RTTVAR with either the doubled timeout or a stale send.
      update_rtt(stack_->simulator().now() - front.first_sent);
    }
    outstanding_.pop_front();
  }
  // RFC 6582 partial ack: progress that stops short of the recovery point
  // means the next outstanding segment died in the same flight. Retransmit
  // it now — waiting a full RTO per lost segment starves small windows
  // (on_loss is a no-op for losses inside the current episode).
  if (cc_.fast_recovery_enabled() && snd_una_ < recover_ &&
      !outstanding_.empty()) {
    cc_.on_loss(outstanding_.front().first_sent, stack_->simulator().now());
    resend_front();
  }
  arm_rto();

  // Window growth: slow start / congestion avoidance per the configured
  // algorithm; acks for recovery-episode data do not grow the window.
  cc_.on_ack(static_cast<std::size_t>(newly_acked), newest_sent_at,
             stack_->simulator().now());

  if (state_ == TcpState::kSynReceived) enter_established();
  if ((state_ == TcpState::kFinWait || state_ == TcpState::kLastAck) &&
      fin_sent_ && snd_una_ >= snd_nxt_ && peer_fin_seen_) {
    finish(util::Error::none());
    return;
  }
  pump_send();
}

void TcpConnection::handle_segment(Segment segment) {
  if (state_ == TcpState::kClosed) return;

  if (segment.rst) {
    finish(state_ == TcpState::kSynSent
               ? util::Error::conn_refused("RST in response to SYN")
               : util::Error::conn_reset("connection reset by peer"));
    return;
  }

  if (segment.syn && segment.has_ack && state_ == TcpState::kSynSent) {
    // SYN-ACK: peer's SYN consumes its seq 0.
    rcv_nxt_ = 1;
    const bool had_early_data = !reassembly_.empty();
    // TFO fallback: if our SYN carried early data but the peer acknowledged
    // only the SYN (ack == 1), the server ignored the payload — requeue it
    // for normal transmission after the handshake (RFC 7413 §4.1.3).
    if (segment.ack == 1 && !outstanding_.empty() &&
        outstanding_.front().segment.syn &&
        !outstanding_.front().segment.payload.empty()) {
      auto& payload = outstanding_.front().segment.payload;
      send_buffer_.insert(send_buffer_.begin(), payload.data(),
                          payload.data() + payload.size());
      payload.clear();
      snd_nxt_ = 1;
      used_tfo_ = false;
    }
    handle_ack(segment.ack, /*pure_ack=*/false);
    send_pure_ack();
    enter_established();
    // 0.5-RTT data from a TFO server can outrace the SYN-ACK; it was
    // stashed in the reassembly buffer and becomes deliverable now.
    if (had_early_data) deliver_in_order();
    return;
  }

  if (segment.syn && !segment.has_ack) {
    // Duplicate SYN (our SYN-ACK or their retransmission raced); re-ack.
    if (!is_client_) send_pure_ack();
    return;
  }

  if (segment.has_ack) {
    const bool pure_ack =
        segment.payload.empty() && !segment.syn && !segment.fin;
    handle_ack(segment.ack, pure_ack);
  }
  if (state_ == TcpState::kClosed) return;

  bool advanced = false;
  if (!segment.payload.empty()) {
    if (segment.seq == rcv_nxt_) {
      rcv_nxt_ += segment.payload.size();
      advanced = true;
      if (on_data_) on_data_(segment.payload.view());
      deliver_in_order();
    } else if (segment.seq > rcv_nxt_) {
      reassembly_.emplace(segment.seq, std::move(segment.payload));
    }
    // Data at or below rcv_nxt_ is a duplicate: just re-ack.
    send_pure_ack();
  }

  if (segment.fin) {
    peer_fin_seen_ = true;
    peer_fin_seq_ = segment.seq;
    if (segment.seq == rcv_nxt_) {
      rcv_nxt_ += 1;
      advanced = true;
    }
    send_pure_ack();
    if (state_ == TcpState::kEstablished) {
      state_ = TcpState::kCloseWait;
    }
    if (!remote_fin_notified_ && segment.seq == rcv_nxt_ - 1) {
      remote_fin_notified_ = true;
      if (on_remote_fin_) on_remote_fin_();
      if (state_ == TcpState::kClosed) return;
    }
    if (fin_sent_ && snd_una_ >= snd_nxt_) {
      finish(util::Error::none());
      return;
    }
  }
  (void)advanced;
}

void TcpConnection::deliver_in_order() {
  auto it = reassembly_.begin();
  while (it != reassembly_.end()) {
    if (it->first > rcv_nxt_) break;
    if (it->first + it->second.size() <= rcv_nxt_) {
      // Entirely duplicate.
      it = reassembly_.erase(it);
      continue;
    }
    const std::size_t skip = static_cast<std::size_t>(rcv_nxt_ - it->first);
    std::span<const std::uint8_t> fresh(it->second.data() + skip,
                                        it->second.size() - skip);
    rcv_nxt_ += fresh.size();
    if (on_data_) on_data_(fresh);
    it = reassembly_.erase(it);
    it = reassembly_.begin();
  }
  // Peer FIN may now be in order.
  if (peer_fin_seen_ && peer_fin_seq_ && *peer_fin_seq_ == rcv_nxt_) {
    rcv_nxt_ += 1;
    if (state_ == TcpState::kEstablished) state_ = TcpState::kCloseWait;
    if (!remote_fin_notified_) {
      remote_fin_notified_ = true;
      if (on_remote_fin_) on_remote_fin_();
    }
  }
}

void TcpConnection::send_pure_ack() {
  Segment ack;
  ack.has_ack = true;
  ack.seq = snd_nxt_;
  ack.ack = rcv_nxt_;
  transmit(std::move(ack), /*count_outstanding=*/false);
}

void TcpConnection::finish(util::Error error) {
  if (state_ == TcpState::kClosed) return;
  state_ = TcpState::kClosed;
  for (auto& out : outstanding_) out.rto_timer.cancel();
  outstanding_.clear();
  auto cb = on_closed_;
  // Deregister from the stack last; `this` may die when the stack's
  // shared_ptr drops, so keep a local reference.
  auto self = shared_from_this();
  stack_->remove_connection(TcpStack::FlowKey{local_, remote_});
  if (cb) cb(error);
  // Break reference cycles (handlers capture owners that hold this
  // connection); deferred so a running closure is never destroyed mid-call.
  stack_->simulator().schedule(0, [self] {
    self->on_connected_ = nullptr;
    self->on_data_ = nullptr;
    self->on_closed_ = nullptr;
    self->on_remote_fin_ = nullptr;
  });
}

}  // namespace doxlab::tcp
