#include "h2/connection.h"

#include "util/bytes.h"
#include "util/logging.h"

namespace doxlab::h2 {

H2Connection::H2Connection(bool is_client, Callbacks callbacks)
    : is_client_(is_client), cb_(std::move(callbacks)) {}

void H2Connection::fail(const std::string& reason) {
  if (failed_) return;
  failed_ = true;
  if (cb_.on_error) cb_.on_error(util::Error::protocol(reason));
}

namespace {
/// Front room left on every frame buffer so the DoH layer can seal the TLS
/// record header in place.
constexpr std::size_t kSendHeadroom = 5;
}  // namespace

void H2Connection::send_frame(H2FrameType type, std::uint8_t flags,
                              std::uint32_t stream_id,
                              std::span<const std::uint8_t> payload) {
  send_frame(type, flags, stream_id,
             util::Buffer::copy_of(payload, kFrameHeaderBytes + kSendHeadroom));
}

void H2Connection::send_frame(H2FrameType type, std::uint8_t flags,
                              std::uint32_t stream_id, util::Buffer payload) {
  const std::size_t length = payload.size();
  std::uint8_t* h = payload.prepend(kFrameHeaderBytes);
  h[0] = static_cast<std::uint8_t>((length >> 16) & 0xFF);
  h[1] = static_cast<std::uint8_t>((length >> 8) & 0xFF);
  h[2] = static_cast<std::uint8_t>(length & 0xFF);
  h[3] = static_cast<std::uint8_t>(type);
  h[4] = flags;
  const std::uint32_t id = stream_id & 0x7FFFFFFF;
  h[5] = static_cast<std::uint8_t>(id >> 24);
  h[6] = static_cast<std::uint8_t>(id >> 16);
  h[7] = static_cast<std::uint8_t>(id >> 8);
  h[8] = static_cast<std::uint8_t>(id);
  if (cb_.send_transport) cb_.send_transport(std::move(payload));
}

void H2Connection::send_settings(bool ack) {
  if (ack) {
    send_frame(H2FrameType::kSettings, /*flags=*/0x1, 0,
               std::span<const std::uint8_t>{});
    return;
  }
  // Three settings (MAX_CONCURRENT_STREAMS, INITIAL_WINDOW_SIZE,
  // MAX_FRAME_SIZE), 6 bytes each.
  ByteWriter w;
  w.u16(0x3);
  w.u32(100);
  w.u16(0x4);
  w.u32(1 << 20);
  w.u16(0x5);
  w.u32(1 << 14);
  auto payload = w.take();
  send_frame(H2FrameType::kSettings, 0, 0, payload);
}

void H2Connection::start() {
  if (started_ || !is_client_) return;
  started_ = true;
  if (cb_.send_transport) {
    cb_.send_transport(util::Buffer::copy_of(
        std::span(reinterpret_cast<const std::uint8_t*>(kClientPreface.data()),
                  kClientPreface.size()),
        kSendHeadroom));
  }
  send_settings(/*ack=*/false);
  // A WINDOW_UPDATE for the connection is what real clients (incl.
  // Chromium's stack) emit right after SETTINGS.
  ByteWriter w;
  w.u32(15 * (1 << 20));
  auto payload = w.take();
  send_frame(H2FrameType::kWindowUpdate, 0, 0, payload);
}

std::uint32_t H2Connection::send_request(const std::vector<Header>& headers,
                                         util::Buffer body) {
  const std::uint32_t id = next_stream_id_;
  next_stream_id_ += 2;
  ++streams_opened_;
  auto block = encoder_.encode(headers);
  const bool end_on_headers = body.empty();
  send_frame(H2FrameType::kHeaders,
             static_cast<std::uint8_t>(0x4 | (end_on_headers ? 0x1 : 0x0)),
             id, std::span<const std::uint8_t>(block));
  if (!body.empty()) {
    send_frame(H2FrameType::kData, /*END_STREAM=*/0x1, id, std::move(body));
  }
  return id;
}

void H2Connection::send_response(std::uint32_t stream_id,
                                 const std::vector<Header>& headers,
                                 util::Buffer body) {
  auto block = encoder_.encode(headers);
  const bool end_on_headers = body.empty();
  send_frame(H2FrameType::kHeaders,
             static_cast<std::uint8_t>(0x4 | (end_on_headers ? 0x1 : 0x0)),
             stream_id, std::span<const std::uint8_t>(block));
  if (!body.empty()) {
    send_frame(H2FrameType::kData, 0x1, stream_id, std::move(body));
  }
}

void H2Connection::send_goaway() {
  ByteWriter w;
  w.u32(next_stream_id_);
  w.u32(0);  // NO_ERROR
  auto payload = w.take();
  send_frame(H2FrameType::kGoaway, 0, 0, payload);
}

void H2Connection::on_transport_data(std::span<const std::uint8_t> data) {
  if (failed_) return;
  recv_buffer_.insert(recv_buffer_.end(), data.begin(), data.end());

  // Server: strip the client preface first.
  if (!is_client_ && !preface_done_) {
    if (recv_buffer_.size() < kClientPreface.size()) return;
    if (!std::equal(kClientPreface.begin(), kClientPreface.end(),
                    recv_buffer_.begin())) {
      DOXLAB_DEBUG("preface head: " << to_hex(std::span(
          recv_buffer_.data(),
          std::min<std::size_t>(recv_buffer_.size(), 32))));
      fail("bad connection preface");
      return;
    }
    recv_buffer_.erase(recv_buffer_.begin(),
                       recv_buffer_.begin() + kClientPreface.size());
    preface_done_ = true;
    send_settings(/*ack=*/false);
  }

  while (recv_buffer_.size() >= kFrameHeaderBytes) {
    ByteReader r(recv_buffer_);
    auto len_hi = r.u8();
    auto len_lo = r.u16();
    auto type = r.u8();
    auto flags = r.u8();
    auto stream_id = r.u32();
    if (!len_hi || !len_lo || !type || !flags || !stream_id) return;
    const std::size_t length = (std::size_t(*len_hi) << 16) | *len_lo;
    if (recv_buffer_.size() < kFrameHeaderBytes + length) return;
    std::vector<std::uint8_t> payload(
        recv_buffer_.begin() + kFrameHeaderBytes,
        recv_buffer_.begin() + kFrameHeaderBytes + length);
    recv_buffer_.erase(recv_buffer_.begin(),
                       recv_buffer_.begin() + kFrameHeaderBytes + length);
    process_frame(static_cast<H2FrameType>(*type), *flags,
                  *stream_id & 0x7FFFFFFF, payload);
    if (failed_) return;
  }
}

void H2Connection::process_frame(H2FrameType type, std::uint8_t flags,
                                 std::uint32_t stream_id,
                                 std::span<const std::uint8_t> payload) {
  switch (type) {
    case H2FrameType::kSettings:
      if (flags & 0x1) return;  // their ACK of our settings
      settings_received_ = true;
      send_settings(/*ack=*/true);
      return;
    case H2FrameType::kHeaders: {
      auto headers = decoder_.decode(payload);
      if (!headers) {
        fail("HPACK decode error");
        return;
      }
      if (cb_.on_headers) {
        cb_.on_headers(stream_id, *headers, (flags & 0x1) != 0);
      }
      return;
    }
    case H2FrameType::kData:
      if (cb_.on_data) cb_.on_data(stream_id, payload, (flags & 0x1) != 0);
      return;
    case H2FrameType::kWindowUpdate:
    case H2FrameType::kPing:
    case H2FrameType::kRstStream:
      return;  // byte cost only in the model
    case H2FrameType::kGoaway:
      if (cb_.on_goaway) cb_.on_goaway();
      return;
  }
  // Unknown frame types are ignored per RFC 9113 §4.1.
}

}  // namespace doxlab::h2
