// Header compression for the HTTP/2 model (HPACK-shaped).
//
// Follows HPACK's structure — a static table of common header fields, a
// dynamic table built up per connection, indexed references for repeats and
// literals for first occurrences — with a simplified binary encoding
// (1-byte index references, 16-bit literal lengths, no Huffman coding).
// The property that matters for the paper is preserved: the *first* DoH
// request on a connection pays for full header literals (part of DoH's
// 579-byte query cost in Table 1), while subsequent requests compress to a
// few bytes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace doxlab::h2 {

struct Header {
  std::string name;
  std::string value;
  bool operator==(const Header&) const = default;
};

/// Entries 1..N of the static table (subset of RFC 7541 Appendix A that the
/// DoH exchange uses).
std::span<const Header> static_table();

/// Stateful encoder. Encoder and decoder must process header blocks in the
/// same order to keep their dynamic tables synchronized (true of HPACK).
class HpackEncoder {
 public:
  std::vector<std::uint8_t> encode(std::span<const Header> headers);

 private:
  std::map<std::pair<std::string, std::string>, std::uint8_t> dynamic_;
  std::map<std::string, std::uint8_t> dynamic_names_;
  std::uint8_t next_index_ = 0;
};

/// Stateful decoder mirroring HpackEncoder.
class HpackDecoder {
 public:
  /// nullopt on malformed input.
  std::optional<std::vector<Header>> decode(
      std::span<const std::uint8_t> block);

 private:
  std::vector<Header> dynamic_;
  std::vector<std::string> dynamic_names_;
};

}  // namespace doxlab::h2
