// HTTP/2 connection model: framing over an abstract reliable byte stream
// (wired to a TlsSession by the DoH client/server).
//
// Implements the parts of RFC 9113 the DoH exchange exercises: the 24-byte
// client connection preface, SETTINGS exchange + ACK, HEADERS with
// HPACK-style compression, DATA with END_STREAM, WINDOW_UPDATE (emitted for
// realism of byte counts), RST_STREAM and GOAWAY. Client streams are odd
// (1, 3, 5, ...). This overhead is exactly what makes DoH queries/responses
// the largest of all five protocols in the paper's Table 1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "h2/hpack.h"
#include "util/buffer.h"
#include "util/error.h"

namespace doxlab::h2 {

/// HTTP/2 frame types (RFC 9113 §6).
enum class H2FrameType : std::uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPing = 0x6,
  kGoaway = 0x7,
  kWindowUpdate = 0x8,
};

inline constexpr std::size_t kFrameHeaderBytes = 9;
inline constexpr std::string_view kClientPreface =
    "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

class H2Connection {
 public:
  struct Callbacks {
    /// Bytes for the transport (TLS application data). Buffers carry
    /// headroom for the TLS record header, so the DoH layer seals them
    /// without copying.
    std::function<void(util::Buffer)> send_transport;
    /// A complete header block arrived for a stream.
    std::function<void(std::uint32_t stream_id,
                       const std::vector<Header>& headers, bool end_stream)>
        on_headers;
    /// Request/response body bytes.
    std::function<void(std::uint32_t stream_id,
                       std::span<const std::uint8_t> data, bool end_stream)>
        on_data;
    /// Peer sent GOAWAY.
    std::function<void()> on_goaway;
    /// Protocol error; connection is dead.
    /// Fatal framing/compression failure (always kProtocolError).
    std::function<void(const util::Error&)> on_error;
  };

  H2Connection(bool is_client, Callbacks callbacks);

  /// Client: emits the connection preface and initial SETTINGS. Must be
  /// called once before the first request. Servers send SETTINGS on
  /// receiving the preface.
  void start();

  /// Client: sends HEADERS (+DATA when `body` is non-empty) on a new
  /// stream; returns the stream id. The DATA frame header is prepended
  /// into `body`'s headroom in place — encode bodies with
  /// kFrameHeaderBytes (+5 for the TLS record) of headroom to avoid every
  /// copy between the DNS encoder and the TCP send queue.
  std::uint32_t send_request(const std::vector<Header>& headers,
                             util::Buffer body);
  std::uint32_t send_request(const std::vector<Header>& headers,
                             std::vector<std::uint8_t> body) {
    return send_request(headers, util::Buffer::copy_of(
                                     body, kFrameHeaderBytes + 5));
  }

  /// Server: responds on `stream_id`.
  void send_response(std::uint32_t stream_id,
                     const std::vector<Header>& headers, util::Buffer body);
  void send_response(std::uint32_t stream_id,
                     const std::vector<Header>& headers,
                     std::vector<std::uint8_t> body) {
    send_response(stream_id, headers,
                  util::Buffer::copy_of(body, kFrameHeaderBytes + 5));
  }

  /// Sends GOAWAY (graceful shutdown announcement).
  void send_goaway();

  /// Feeds transport bytes.
  void on_transport_data(std::span<const std::uint8_t> data);

  bool settings_received() const { return settings_received_; }
  std::uint32_t streams_opened() const { return streams_opened_; }

 private:
  void send_frame(H2FrameType type, std::uint8_t flags,
                  std::uint32_t stream_id, std::span<const std::uint8_t> payload);
  /// Zero-copy variant: prepends the 9-byte frame header into `payload`'s
  /// headroom and ships the same buffer.
  void send_frame(H2FrameType type, std::uint8_t flags,
                  std::uint32_t stream_id, util::Buffer payload);
  void send_settings(bool ack);
  void process_frame(H2FrameType type, std::uint8_t flags,
                     std::uint32_t stream_id,
                     std::span<const std::uint8_t> payload);
  void fail(const std::string& reason);

  bool is_client_;
  Callbacks cb_;
  HpackEncoder encoder_;
  HpackDecoder decoder_;
  std::vector<std::uint8_t> recv_buffer_;
  bool preface_done_ = false;   // server: preface consumed
  bool started_ = false;
  bool failed_ = false;
  bool settings_received_ = false;
  std::uint32_t next_stream_id_ = 1;  // client: odd ids
  std::uint32_t streams_opened_ = 0;
};

}  // namespace doxlab::h2
