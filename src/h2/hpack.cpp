#include "h2/hpack.h"

namespace doxlab::h2 {

namespace {
// Encoding markers (one byte each):
//   0x80 | i : indexed — static table entry i (1-based, i < 0x40) or
//              dynamic entry (i - 0x40).
//   0x40     : literal value with indexed name (next byte: name index as
//              above), adds to dynamic table.
//   0x00     : literal name + value, adds to dynamic table.
constexpr std::uint8_t kIndexed = 0x80;
constexpr std::uint8_t kLiteralWithName = 0x40;
constexpr std::uint8_t kLiteral = 0x00;
constexpr std::uint8_t kDynamicBase = 0x40;
constexpr std::size_t kMaxDynamicEntries = 0x80 - kDynamicBase;
}  // namespace

std::span<const Header> static_table() {
  static const std::vector<Header> kTable = {
      {":method", "GET"},
      {":method", "POST"},
      {":path", "/"},
      {":scheme", "https"},
      {":status", "200"},
      {":status", "404"},
      {":status", "500"},
      {":authority", ""},
      {"accept", "*/*"},
      {"accept", "application/dns-message"},
      {"content-type", "application/dns-message"},
      {"content-length", ""},
      {"user-agent", ""},
      {"cache-control", "no-cache"},
  };
  return kTable;
}

std::vector<std::uint8_t> HpackEncoder::encode(
    std::span<const Header> headers) {
  ByteWriter w;
  const auto table = static_table();
  for (const Header& h : headers) {
    // Full static match?
    std::optional<std::uint8_t> static_index;
    std::optional<std::uint8_t> static_name_index;
    for (std::size_t i = 0; i < table.size(); ++i) {
      if (table[i].name == h.name) {
        if (!static_name_index) {
          static_name_index = static_cast<std::uint8_t>(i + 1);
        }
        if (table[i].value == h.value) {
          static_index = static_cast<std::uint8_t>(i + 1);
          break;
        }
      }
    }
    if (static_index) {
      w.u8(kIndexed | *static_index);
      continue;
    }
    // Full dynamic match?
    auto dyn = dynamic_.find({h.name, h.value});
    if (dyn != dynamic_.end()) {
      w.u8(kIndexed |
           static_cast<std::uint8_t>(kDynamicBase + dyn->second));
      continue;
    }
    // Name known (static or dynamic)?
    std::optional<std::uint8_t> name_ref = static_name_index;
    if (!name_ref) {
      auto dn = dynamic_names_.find(h.name);
      if (dn != dynamic_names_.end()) {
        name_ref = static_cast<std::uint8_t>(kDynamicBase + dn->second);
      }
    }
    if (name_ref) {
      w.u8(kLiteralWithName);
      w.u8(*name_ref);
      w.u16(static_cast<std::uint16_t>(h.value.size()));
      w.bytes(h.value);
    } else {
      w.u8(kLiteral);
      w.u16(static_cast<std::uint16_t>(h.name.size()));
      w.bytes(h.name);
      w.u16(static_cast<std::uint16_t>(h.value.size()));
      w.bytes(h.value);
    }
    // Both literal forms add to the dynamic table (bounded).
    if (next_index_ < kMaxDynamicEntries) {
      dynamic_[{h.name, h.value}] = next_index_;
      dynamic_names_.try_emplace(h.name, next_index_);
      ++next_index_;
    }
  }
  return w.take();
}

std::optional<std::vector<Header>> HpackDecoder::decode(
    std::span<const std::uint8_t> block) {
  std::vector<Header> out;
  const auto table = static_table();
  ByteReader r(block);

  auto resolve_name = [&](std::uint8_t index) -> std::optional<std::string> {
    if (index >= kDynamicBase) {
      const std::size_t dyn = index - kDynamicBase;
      if (dyn >= dynamic_names_.size()) return std::nullopt;
      return dynamic_names_[dyn];
    }
    if (index == 0 || index > table.size()) return std::nullopt;
    return table[index - 1].name;
  };

  while (!r.at_end()) {
    auto first = r.u8();
    if (!first) return std::nullopt;
    if (*first & kIndexed) {
      const std::uint8_t index = *first & 0x7F;
      if (index >= kDynamicBase) {
        const std::size_t dyn = index - kDynamicBase;
        if (dyn >= dynamic_.size()) return std::nullopt;
        out.push_back(dynamic_[dyn]);
      } else {
        if (index == 0 || index > table.size()) return std::nullopt;
        out.push_back(table[index - 1]);
      }
      continue;
    }
    Header h;
    if (*first == kLiteralWithName) {
      auto name_index = r.u8();
      if (!name_index) return std::nullopt;
      auto name = resolve_name(*name_index);
      if (!name) return std::nullopt;
      h.name = std::move(*name);
    } else if (*first == kLiteral) {
      auto name_len = r.u16();
      if (!name_len) return std::nullopt;
      auto name = r.string(*name_len);
      if (!name) return std::nullopt;
      h.name = std::move(*name);
    } else {
      return std::nullopt;
    }
    auto value_len = r.u16();
    if (!value_len) return std::nullopt;
    auto value = r.string(*value_len);
    if (!value) return std::nullopt;
    h.value = std::move(*value);

    if (dynamic_.size() < kMaxDynamicEntries) {
      dynamic_.push_back(h);
      dynamic_names_.push_back(h.name);
    }
    out.push_back(std::move(h));
  }
  return out;
}

}  // namespace doxlab::h2
